//! Typed GEMM epilogues: bias + requantization + activation fused into the
//! accumulator writeback.
//!
//! The unfused datapath finishes a quantized convolution in three separate
//! passes over the output tensor: requantize the `i32` accumulators
//! (adding bias), then (for layers that carry one) a batch-norm affine,
//! then the activation. An [`Epilogue`] is the install-time record of that
//! whole tail — built once per SubGraph install by the IR lowering
//! (`sushi-ir`), applied per output *row* while the accumulator tile is
//! still cache-hot.
//!
//! Exactness contract (pinned by the unit tests below and the cross-crate
//! fusion proptests): with a uniform scale and no offset, [`Epilogue::
//! apply_row`] is **bit-identical** to
//! [`requantize_accumulator`](crate::quant::requantize_accumulator)
//! followed by the reference int8 activation (`max(0)` for ReLU;
//! quantize∘act∘dequantize for the h-family). Batch-norm folding uses the
//! per-channel scale/offset form and matches the two-pass reference within
//! one output quantum (one extra rounding step is folded away).

use crate::error::TensorError;
use crate::ops::activation::Activation;
use crate::quant::QuantParams;

/// The accumulator→output rescale of an [`Epilogue`].
#[derive(Debug, Clone, PartialEq)]
pub enum EpilogueScale {
    /// One scale for every output channel (`in.scale · w.scale / out.scale`
    /// — the plain conv requantization).
    Uniform(f32),
    /// Per-output-channel scales (conv requantization with a folded
    /// batch-norm multiplier).
    PerChannel(Vec<f32>),
}

/// A fused conv tail: `i32` accumulator → bias add → per-channel rescale
/// (+ offset) → round/clamp to `i8` → activation, in one pass.
///
/// Built once per cache install; [`Epilogue::apply_row`] runs per output
/// row inside [`crate::ops::conv::conv2d_i8_fused`].
#[derive(Debug, Clone, PartialEq)]
pub struct Epilogue {
    bias: Vec<i32>,
    scale: EpilogueScale,
    /// Per-channel additive offset in output-quantum units, applied after
    /// the rescale and before rounding (folded batch-norm shift). Empty
    /// means zero for every channel.
    offset: Vec<f32>,
    out_q: QuantParams,
    act: Activation,
}

impl Epilogue {
    /// Epilogue for a plain quantized conv: per-channel bias, one
    /// accumulator scale, optional fused activation.
    ///
    /// # Errors
    /// Returns an error when `bias` is empty (every conv layer in the
    /// datapath carries a bias vector sized to its output channels).
    pub fn uniform(
        bias: Vec<i32>,
        acc_scale: f32,
        out_q: QuantParams,
        act: Activation,
    ) -> Result<Self, TensorError> {
        if bias.is_empty() {
            return Err(TensorError::InvalidParam { what: "epilogue needs per-channel bias" });
        }
        Ok(Self { bias, scale: EpilogueScale::Uniform(acc_scale), offset: Vec::new(), out_q, act })
    }

    /// Epilogue with per-channel scales and offsets — the folded-batch-norm
    /// form: channel `c` computes
    /// `round((acc + bias[c]) · scales[c] + offsets[c]) + zp`, clamped.
    ///
    /// # Errors
    /// Returns an error when the vector lengths disagree.
    pub fn per_channel(
        bias: Vec<i32>,
        scales: Vec<f32>,
        offsets: Vec<f32>,
        out_q: QuantParams,
        act: Activation,
    ) -> Result<Self, TensorError> {
        if bias.is_empty() {
            return Err(TensorError::InvalidParam { what: "epilogue needs per-channel bias" });
        }
        if scales.len() != bias.len() {
            return Err(TensorError::LengthMismatch { expected: bias.len(), actual: scales.len() });
        }
        if offsets.len() != bias.len() {
            return Err(TensorError::LengthMismatch {
                expected: bias.len(),
                actual: offsets.len(),
            });
        }
        Ok(Self { bias, scale: EpilogueScale::PerChannel(scales), offset: offsets, out_q, act })
    }

    /// Number of output channels this epilogue covers.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.bias.len()
    }

    /// The fused activation.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.act
    }

    /// The output quantization.
    #[must_use]
    pub fn out_q(&self) -> QuantParams {
        self.out_q
    }

    /// The rescale applied to channel `ch`.
    #[must_use]
    pub fn scale_for(&self, ch: usize) -> f32 {
        match &self.scale {
            EpilogueScale::Uniform(s) => *s,
            EpilogueScale::PerChannel(v) => v[ch],
        }
    }

    /// Applies the full tail to one accumulator value of channel `ch`.
    #[must_use]
    pub fn apply(&self, ch: usize, acc: i32) -> i8 {
        let mut out = [0i8];
        // Lengths match by construction; `ch` bounds are the caller's
        // contract, same as indexing `bias[ch]`.
        self.apply_row(ch, &[acc], &mut out).expect("single-element row");
        out[0]
    }

    /// Applies the full tail to one output row (all pixels of channel `ch`
    /// for one batch item), reading `acc` and writing `dst`.
    ///
    /// # Errors
    /// Returns an error when `acc`/`dst` lengths disagree or `ch` is out of
    /// range.
    pub fn apply_row(&self, ch: usize, acc: &[i32], dst: &mut [i8]) -> Result<(), TensorError> {
        if acc.len() != dst.len() {
            return Err(TensorError::LengthMismatch { expected: acc.len(), actual: dst.len() });
        }
        if ch >= self.bias.len() {
            return Err(TensorError::InvalidParam { what: "epilogue channel out of range" });
        }
        let bias = self.bias[ch];
        let scale = self.scale_for(ch);
        let offset = self.offset.get(ch).copied().unwrap_or(0.0);
        let zp = f32::from(self.out_q.zero_point);
        // `x + 0.0` is exact for every f32 `x` (only -0.0 is canonicalized,
        // and the subsequent round/add/clamp/cast agree on ±0.0), so the
        // no-offset case below stays bit-identical to
        // `requantize_accumulator(acc + bias, scale, zp)`.
        let requant = |v: i32| -> i8 {
            let y = ((v + bias) as f32 * scale + offset).round() + zp;
            y.clamp(-128.0, 127.0) as i8
        };
        match self.act {
            Activation::None => {
                for (d, &v) in dst.iter_mut().zip(acc) {
                    *d = requant(v);
                }
            }
            Activation::Relu => {
                // Exact on data whose zero point is representable: matches
                // requantize-then-`max(0)` (the reference int8 ReLU).
                for (d, &v) in dst.iter_mut().zip(acc) {
                    *d = requant(v).max(0);
                }
            }
            act => {
                // h-family: the reference applies the activation in the
                // dequantized domain and requantizes; replicate exactly.
                for (d, &v) in dst.iter_mut().zip(acc) {
                    let q = requant(v);
                    *d = self.out_q.quantize(act.apply(self.out_q.dequantize(q)));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::requantize_accumulator;
    use crate::rng::DetRng;

    const OUT_Q: QuantParams = QuantParams { scale: 8.0 / 127.0, zero_point: 0 };

    fn reference_tail(acc: i32, bias: i32, scale: f32, out_q: QuantParams, act: Activation) -> i8 {
        let q = requantize_accumulator(acc + bias, scale, out_q.zero_point);
        match act {
            Activation::None => q,
            Activation::Relu => q.max(0),
            other => out_q.quantize(other.apply(out_q.dequantize(q))),
        }
    }

    #[test]
    fn uniform_matches_requantize_then_activation_bitwise() {
        let mut rng = DetRng::new(404);
        for act in [
            Activation::None,
            Activation::Relu,
            Activation::Relu6,
            Activation::HSwish,
            Activation::HSigmoid,
        ] {
            let bias: Vec<i32> = (0..5).map(|_| i32::from(rng.next_i8()) * 100).collect();
            let ep = Epilogue::uniform(bias.clone(), 0.0037, OUT_Q, act).unwrap();
            for ch in 0..5 {
                let acc: Vec<i32> = (0..64).map(|_| i32::from(rng.next_i8()) * 977).collect();
                let mut fused = vec![0i8; acc.len()];
                ep.apply_row(ch, &acc, &mut fused).unwrap();
                for (f, &v) in fused.iter().zip(&acc) {
                    assert_eq!(*f, reference_tail(v, bias[ch], 0.0037, OUT_Q, act), "{act:?}");
                }
            }
        }
    }

    #[test]
    fn apply_scalar_matches_row() {
        let ep = Epilogue::uniform(vec![7, -3], 0.01, OUT_Q, Activation::Relu).unwrap();
        assert_eq!(ep.apply(0, 500), reference_tail(500, 7, 0.01, OUT_Q, Activation::Relu));
        assert_eq!(ep.apply(1, -900), reference_tail(-900, -3, 0.01, OUT_Q, Activation::Relu));
    }

    #[test]
    fn per_channel_scales_and_offsets_apply() {
        let ep = Epilogue::per_channel(
            vec![0, 0],
            vec![0.01, 0.02],
            vec![0.0, 10.0],
            OUT_Q,
            Activation::None,
        )
        .unwrap();
        // ch 0: round(100·0.01) = 1; ch 1: round(100·0.02 + 10) = 12.
        assert_eq!(ep.apply(0, 100), 1);
        assert_eq!(ep.apply(1, 100), 12);
        assert_eq!(ep.scale_for(1), 0.02);
    }

    #[test]
    fn saturates_at_i8_limits() {
        let ep = Epilogue::uniform(vec![0], 1.0, OUT_Q, Activation::None).unwrap();
        assert_eq!(ep.apply(0, 1 << 20), 127);
        assert_eq!(ep.apply(0, -(1 << 20)), -128);
    }

    #[test]
    fn rejects_inconsistent_construction() {
        assert!(Epilogue::uniform(vec![], 1.0, OUT_Q, Activation::None).is_err());
        assert!(Epilogue::per_channel(
            vec![1, 2],
            vec![1.0],
            vec![0.0, 0.0],
            OUT_Q,
            Activation::None
        )
        .is_err());
        assert!(Epilogue::per_channel(
            vec![1, 2],
            vec![1.0, 1.0],
            vec![0.0],
            OUT_Q,
            Activation::None
        )
        .is_err());
    }

    #[test]
    fn apply_row_validates_lengths_and_channel() {
        let ep = Epilogue::uniform(vec![0], 1.0, OUT_Q, Activation::None).unwrap();
        let mut dst = [0i8; 2];
        assert!(ep.apply_row(0, &[1, 2, 3], &mut dst).is_err());
        assert!(ep.apply_row(1, &[1, 2], &mut dst).is_err());
    }
}
