//! Operand packing for the panel-blocked GEMM kernels (`crate::ops::gemm`).
//!
//! The microkernels in [`crate::ops::gemm`] never touch row-major operands:
//! both inputs are first repacked into panel layouts whose inner stride
//! matches the register tile, so every microkernel iteration loads exactly
//! `MR` contiguous A values and `NR` contiguous B values:
//!
//! ```text
//!   A (m × k, row-major)          packed A: row panels, k-major
//!   ┌───────────────┐             ┌ panel 0: a[0..MR) of col 0,
//!   │ r0 ──────────▶│             │          a[0..MR) of col 1, … (k steps)
//!   │ r1 ──────────▶│   pack_a    ├ panel 1: rows MR..2·MR, k-major
//!   │ …             │  ────────▶  ├ …
//!   └───────────────┘             └ last panel zero-padded to MR rows
//!
//!   B (k × n, row-major)          packed B: column panels, k-major
//!   ┌───────────────┐             ┌ panel 0: b[0..NR) of row 0,
//!   │ c0 c1 c2 …    │   pack_b    │          b[0..NR) of row 1, … (k steps)
//!   │ ▼  ▼  ▼       │  ────────▶  ├ panel 1: cols NR..2·NR, k-major
//!   └───────────────┘             └ last panel zero-padded to NR cols
//! ```
//!
//! For the quantized path the zero points are subtracted **at pack time**
//! (`i8 → i16` widening, so `a − zp` can never overflow): the microkernel
//! then runs plain `i32 += i16·i16` multiply-accumulates with no per-MAC
//! zero-point work, and padded cells become literal `0`, contributing
//! nothing — exactly the Zero-Subtraction semantics of the reference loops.
//!
//! Packing the *weight* operand (`A` in the conv-as-GEMM orientation used
//! here: `C[kg × npix] = W[kg × kdim] · patches[kdim × npix]`) is the
//! software mirror of the paper's SubGraph-Stationary insight: a SubGraph
//! cached on the accelerator serves every query until the scheduler swaps
//! it, so [`PackedConv2d`] panels built **once per cache install** are
//! reused by every subsequent forward pass. The activation-side operand
//! (`B`, the im2col patch matrix) is query-dependent and is packed per call
//! into reusable [`crate::arena::Arena`] scratch instead.
//!
//! [`pack_invocations`] counts every A-side (weight) pack; tests pin the
//! pack-once-per-install property by asserting the counter is flat across
//! repeated serves.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::TensorError;
use crate::ops::conv::Conv2dParams;
use crate::quant::QuantParams;
use crate::shape::Shape4;
use crate::tensor::Tensor;

/// Register-tile height: rows of `C` produced per microkernel call.
pub const MR: usize = 4;
/// Register-tile width: columns of `C` produced per microkernel call.
pub const NR: usize = 8;

/// Global count of weight-side (A-operand) pack invocations.
static PACK_A_CALLS: AtomicUsize = AtomicUsize::new(0);

/// Number of A-side (weight) pack operations performed by this process so
/// far. Serving tests use the difference across calls to pin that weight
/// packing happens exactly once per SubGraph install, never per query.
#[must_use]
pub fn pack_invocations() -> usize {
    PACK_A_CALLS.load(Ordering::Relaxed)
}

/// Length of the packed-A buffer for an `m × k` operand: `ceil(m/MR)`
/// panels of `k·MR` elements (tail rows zero-padded).
#[must_use]
pub const fn packed_a_len(m: usize, k: usize) -> usize {
    m.div_ceil(MR) * MR * k
}

/// Length of the packed-B buffer for a `k × n` operand: `ceil(n/NR)`
/// panels of `k·NR` elements (tail columns zero-padded).
#[must_use]
pub const fn packed_b_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * NR * k
}

/// Length of the pair-interleaved packed-A buffer for an `m × k` operand:
/// `ceil(m/MR)` panels of `ceil(k/2)·MR·2` elements (odd reduction depths
/// pad the final k-pair with a zero).
#[must_use]
pub const fn packed_a_pairs_len(m: usize, k: usize) -> usize {
    m.div_ceil(MR) * MR * k.div_ceil(2) * 2
}

/// Length of the pair-interleaved packed-B buffer for a `k × n` operand:
/// `ceil(n/NR)` panels of `ceil(k/2)·NR·2` elements.
#[must_use]
pub const fn packed_b_pairs_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * NR * k.div_ceil(2) * 2
}

fn check_len(actual: usize, expected: usize) -> Result<(), TensorError> {
    if actual != expected {
        return Err(TensorError::LengthMismatch { expected, actual });
    }
    Ok(())
}

/// Packs row-major `a` (`m × k`, f32) into MR-row panels, k-major within
/// each panel. Tail rows of the last panel are written as `0.0`.
///
/// # Errors
/// Returns an error if `a` or `dst` have the wrong length.
pub fn pack_a_f32_into(dst: &mut [f32], a: &[f32], m: usize, k: usize) -> Result<(), TensorError> {
    check_len(a.len(), m * k)?;
    check_len(dst.len(), packed_a_len(m, k))?;
    PACK_A_CALLS.fetch_add(1, Ordering::Relaxed);
    for (p, panel) in dst.chunks_exact_mut(MR * k).enumerate() {
        let i0 = p * MR;
        let rows = MR.min(m - i0);
        for kk in 0..k {
            let cell = &mut panel[kk * MR..kk * MR + MR];
            for (r, c) in cell.iter_mut().enumerate() {
                *c = if r < rows { a[(i0 + r) * k + kk] } else { 0.0 };
            }
        }
    }
    Ok(())
}

/// Packs row-major `a` (`m × k`, i8) into MR-row panels with the zero point
/// subtracted into widened `i16` cells. Tail rows become `0` (a value that
/// cannot perturb any accumulator).
///
/// # Errors
/// Returns an error if `a` or `dst` have the wrong length.
pub fn pack_a_i8_into(
    dst: &mut [i16],
    a: &[i8],
    zp: i8,
    m: usize,
    k: usize,
) -> Result<(), TensorError> {
    check_len(a.len(), m * k)?;
    check_len(dst.len(), packed_a_len(m, k))?;
    PACK_A_CALLS.fetch_add(1, Ordering::Relaxed);
    let zp = i16::from(zp);
    for (p, panel) in dst.chunks_exact_mut(MR * k).enumerate() {
        let i0 = p * MR;
        let rows = MR.min(m - i0);
        for kk in 0..k {
            let cell = &mut panel[kk * MR..kk * MR + MR];
            for (r, c) in cell.iter_mut().enumerate() {
                *c = if r < rows { i16::from(a[(i0 + r) * k + kk]) - zp } else { 0 };
            }
        }
    }
    Ok(())
}

/// Packs row-major `a` (`m × k`, i8) into MR-row panels whose k steps are
/// **pair-interleaved**: each panel stores, per k-pair, `MR` adjacent
/// `[a(r,2t), a(r,2t+1)]` pairs. This is the operand layout of the
/// `pmaddwd` microkernel ([`crate::ops::gemm::gemm_i8_packed_pairs`]),
/// which multiplies 16 `i16` pairs per instruction; a broadcast of one
/// 32-bit pair feeds a whole B vector. Zero point is subtracted into the
/// widened `i16` cells; tail rows and the odd-`k` pad pair become `0`.
///
/// # Errors
/// Returns an error if `a` or `dst` have the wrong length.
pub fn pack_a_i8_pairs_into(
    dst: &mut [i16],
    a: &[i8],
    zp: i8,
    m: usize,
    k: usize,
) -> Result<(), TensorError> {
    check_len(a.len(), m * k)?;
    check_len(dst.len(), packed_a_pairs_len(m, k))?;
    PACK_A_CALLS.fetch_add(1, Ordering::Relaxed);
    let zp = i16::from(zp);
    let kpairs = k.div_ceil(2);
    for (p, panel) in dst.chunks_exact_mut(MR * kpairs * 2).enumerate() {
        let i0 = p * MR;
        let rows = MR.min(m - i0);
        for kp in 0..kpairs {
            let cell = &mut panel[kp * MR * 2..(kp + 1) * MR * 2];
            for r in 0..MR {
                for half in 0..2 {
                    let kk = kp * 2 + half;
                    cell[r * 2 + half] =
                        if r < rows && kk < k { i16::from(a[(i0 + r) * k + kk]) - zp } else { 0 };
                }
            }
        }
    }
    Ok(())
}

/// Packs row-major `b` (`k × n`, f32) into NR-column panels, k-major within
/// each panel. Tail columns of the last panel are written as `0.0`.
///
/// # Errors
/// Returns an error if `b` or `dst` have the wrong length.
pub fn pack_b_f32_into(dst: &mut [f32], b: &[f32], k: usize, n: usize) -> Result<(), TensorError> {
    check_len(b.len(), k * n)?;
    check_len(dst.len(), packed_b_len(k, n))?;
    for (p, panel) in dst.chunks_exact_mut(NR * k).enumerate() {
        let j0 = p * NR;
        let cols = NR.min(n - j0);
        for kk in 0..k {
            let src = &b[kk * n + j0..kk * n + j0 + cols];
            let cell = &mut panel[kk * NR..kk * NR + NR];
            cell[..cols].copy_from_slice(src);
            cell[cols..].fill(0.0);
        }
    }
    Ok(())
}

/// Packs row-major `b` (`k × n`, i8) into NR-column panels with the zero
/// point subtracted into widened `i16` cells; tail columns become `0`.
///
/// # Errors
/// Returns an error if `b` or `dst` have the wrong length.
pub fn pack_b_i8_into(
    dst: &mut [i16],
    b: &[i8],
    zp: i8,
    k: usize,
    n: usize,
) -> Result<(), TensorError> {
    check_len(b.len(), k * n)?;
    check_len(dst.len(), packed_b_len(k, n))?;
    let zp = i16::from(zp);
    for (p, panel) in dst.chunks_exact_mut(NR * k).enumerate() {
        let j0 = p * NR;
        let cols = NR.min(n - j0);
        for kk in 0..k {
            let src = &b[kk * n + j0..kk * n + j0 + cols];
            let cell = &mut panel[kk * NR..kk * NR + NR];
            for (c, &v) in cell[..cols].iter_mut().zip(src) {
                *c = i16::from(v) - zp;
            }
            cell[cols..].fill(0);
        }
    }
    Ok(())
}

/// Packs row-major `b` (`k × n`, i8) into **pair-interleaved** NR-column
/// panels: each panel stores, per k-pair, `NR` adjacent
/// `[b(2t,j), b(2t+1,j)]` pairs — one 256-bit load per k-pair for the
/// `pmaddwd` microkernel. Zero point is subtracted into the widened `i16`
/// cells; tail columns and the odd-`k` pad pair become `0`.
///
/// # Errors
/// Returns an error if `b` or `dst` have the wrong length.
pub fn pack_b_i8_pairs_into(
    dst: &mut [i16],
    b: &[i8],
    zp: i8,
    k: usize,
    n: usize,
) -> Result<(), TensorError> {
    check_len(b.len(), k * n)?;
    check_len(dst.len(), packed_b_pairs_len(k, n))?;
    let zp = i16::from(zp);
    let kpairs = k.div_ceil(2);
    for (p, panel) in dst.chunks_exact_mut(NR * kpairs * 2).enumerate() {
        let j0 = p * NR;
        let cols = NR.min(n - j0);
        for kp in 0..kpairs {
            let k0 = kp * 2;
            let cell = &mut panel[kp * NR * 2..(kp + 1) * NR * 2];
            let r0 = &b[k0 * n + j0..k0 * n + j0 + cols];
            let r1 = (k0 + 1 < k).then(|| &b[(k0 + 1) * n + j0..(k0 + 1) * n + j0 + cols]);
            for j in 0..cols {
                cell[j * 2] = i16::from(r0[j]) - zp;
                cell[j * 2 + 1] = r1.map_or(0, |r| i16::from(r[j]) - zp);
            }
            cell[cols * 2..].fill(0);
        }
    }
    Ok(())
}

/// An owned, panel-packed A operand (`m × k`, MR-row panels).
///
/// For the quantized path the cells are zero-point-subtracted `i16`; see
/// the module docs for the exact layout.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedA<T> {
    data: Vec<T>,
    m: usize,
    k: usize,
}

impl PackedA<f32> {
    /// Packs a row-major `m × k` f32 matrix.
    ///
    /// # Errors
    /// Returns an error if `a.len() != m * k`.
    pub fn from_f32(a: &[f32], m: usize, k: usize) -> Result<Self, TensorError> {
        let mut data = vec![0.0; packed_a_len(m, k)];
        pack_a_f32_into(&mut data, a, m, k)?;
        Ok(Self { data, m, k })
    }
}

impl PackedA<i16> {
    /// Packs a row-major `m × k` i8 matrix with its zero point subtracted.
    ///
    /// # Errors
    /// Returns an error if `a.len() != m * k`.
    pub fn from_i8(a: &[i8], zp: i8, m: usize, k: usize) -> Result<Self, TensorError> {
        let mut data = vec![0; packed_a_len(m, k)];
        pack_a_i8_into(&mut data, a, zp, m, k)?;
        Ok(Self { data, m, k })
    }
}

impl<T> PackedA<T> {
    /// The packed panel data.
    #[must_use]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Logical row count `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Reduction depth `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }
}

/// An owned, panel-packed B operand (`k × n`, NR-column panels).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedB<T> {
    data: Vec<T>,
    k: usize,
    n: usize,
}

impl PackedB<f32> {
    /// Packs a row-major `k × n` f32 matrix.
    ///
    /// # Errors
    /// Returns an error if `b.len() != k * n`.
    pub fn from_f32(b: &[f32], k: usize, n: usize) -> Result<Self, TensorError> {
        let mut data = vec![0.0; packed_b_len(k, n)];
        pack_b_f32_into(&mut data, b, k, n)?;
        Ok(Self { data, k, n })
    }
}

impl PackedB<i16> {
    /// Packs a row-major `k × n` i8 matrix with its zero point subtracted.
    ///
    /// # Errors
    /// Returns an error if `b.len() != k * n`.
    pub fn from_i8(b: &[i8], zp: i8, k: usize, n: usize) -> Result<Self, TensorError> {
        let mut data = vec![0; packed_b_len(k, n)];
        pack_b_i8_into(&mut data, b, zp, k, n)?;
        Ok(Self { data, k, n })
    }
}

impl<T> PackedB<T> {
    /// The packed panel data.
    #[must_use]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Reduction depth `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Logical column count `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }
}

/// The panel layout a packed operand was built in.
///
/// `Panel` is the classic k-major layout read by the `mullo`-based
/// microkernel; `KPair` interleaves adjacent k steps so the `pmaddwd`
/// microkernel ([`crate::ops::gemm::gemm_i8_packed_pairs`]) retires 16
/// multiply-accumulates per instruction. The IR lowering (`sushi-ir`)
/// selects the layout per conv at cache-install time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PackLayout {
    /// k-major MR/NR panels (one value per k step).
    #[default]
    Panel,
    /// Pair-interleaved panels (two adjacent k steps per cell).
    KPair,
}

/// Pre-packed int8 convolution weights: one zero-point-subtracted packed-A
/// block per group, concatenated, ready for
/// [`crate::ops::conv::conv2d_i8_prepacked`] (layout `Panel`) or
/// [`crate::ops::conv::conv2d_i8_fused`] (layout `KPair`).
///
/// Packing happens once (per SubGraph install on the serving path); every
/// subsequent query's GEMM reads the panels directly. The group `g` block
/// is the packed form of the group's `kg × (cg·R·S)` weight matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedConv2d {
    data: Vec<i16>,
    wshape: Shape4,
    w_q: QuantParams,
    groups: usize,
    group_stride: usize,
    layout: PackLayout,
}

impl PackedConv2d {
    /// Packs conv weights shaped `(K, C/groups, R, S)` for reuse across
    /// queries, in the classic [`PackLayout::Panel`] layout. Counts as
    /// `groups` weight-pack invocations.
    ///
    /// # Errors
    /// Returns an error when `weights`/`params` are inconsistent (groups
    /// not dividing `K`, zero groups).
    pub fn pack(
        weights: &Tensor<i8>,
        w_q: QuantParams,
        params: &Conv2dParams,
    ) -> Result<Self, TensorError> {
        Self::pack_with_layout(weights, w_q, params, PackLayout::Panel)
    }

    /// [`PackedConv2d::pack`] with an explicit panel layout.
    ///
    /// # Errors
    /// Returns an error when `weights`/`params` are inconsistent (groups
    /// not dividing `K`, zero groups).
    pub fn pack_with_layout(
        weights: &Tensor<i8>,
        w_q: QuantParams,
        params: &Conv2dParams,
        layout: PackLayout,
    ) -> Result<Self, TensorError> {
        let wshape = weights.shape();
        if params.groups == 0 {
            return Err(TensorError::InvalidParam { what: "groups must be nonzero" });
        }
        if !wshape.n.is_multiple_of(params.groups) {
            return Err(TensorError::InvalidParam { what: "channels not divisible by groups" });
        }
        if wshape.h != params.kernel_h || wshape.w != params.kernel_w {
            // rhs carries the kernel dims `params` expected, so the error
            // names both sides of the mismatch.
            return Err(TensorError::ShapeMismatch {
                what: "kernel spatial dims",
                lhs: wshape,
                rhs: Shape4::new(wshape.n, wshape.c, params.kernel_h, params.kernel_w),
            });
        }
        let kg = wshape.n / params.groups;
        let kdim = wshape.c * wshape.h * wshape.w;
        let group_stride = match layout {
            PackLayout::Panel => packed_a_len(kg, kdim),
            PackLayout::KPair => packed_a_pairs_len(kg, kdim),
        };
        let mut data = vec![0i16; group_stride * params.groups];
        let wdata = weights.as_slice();
        for g in 0..params.groups {
            let dst = &mut data[g * group_stride..(g + 1) * group_stride];
            let src = &wdata[g * kg * kdim..(g + 1) * kg * kdim];
            match layout {
                PackLayout::Panel => pack_a_i8_into(dst, src, w_q.zero_point, kg, kdim)?,
                PackLayout::KPair => pack_a_i8_pairs_into(dst, src, w_q.zero_point, kg, kdim)?,
            }
        }
        Ok(Self { data, wshape, w_q, groups: params.groups, group_stride, layout })
    }

    /// The panel layout the weights were packed in.
    #[must_use]
    pub fn layout(&self) -> PackLayout {
        self.layout
    }

    /// The packed-A block for group `g` (`kg × kdim` panels).
    ///
    /// # Panics
    /// Panics if `g >= groups`.
    #[must_use]
    pub fn group(&self, g: usize) -> &[i16] {
        &self.data[g * self.group_stride..(g + 1) * self.group_stride]
    }

    /// The original weight tensor shape `(K, C/groups, R, S)`.
    #[must_use]
    pub fn wshape(&self) -> Shape4 {
        self.wshape
    }

    /// The weight quantization the panels were packed under.
    #[must_use]
    pub fn w_q(&self) -> QuantParams {
        self.w_q
    }

    /// Number of groups.
    #[must_use]
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Bytes held by the packed panels.
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<i16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_a_layout_is_k_major_with_zero_tail() {
        // 5×3 matrix: panel 0 holds rows 0..4, panel 1 holds row 4 + pads.
        let a: Vec<f32> = (0..15).map(|v| v as f32).collect();
        let p = PackedA::from_f32(&a, 5, 3).unwrap();
        assert_eq!(p.data().len(), packed_a_len(5, 3));
        // Panel 0, k step 1 => rows 0..4 of column 1: a[1], a[4], a[7], a[10].
        assert_eq!(&p.data()[4..8], &[1.0, 4.0, 7.0, 10.0]);
        // Panel 1, k step 0 => row 4 col 0, then three pad rows.
        assert_eq!(&p.data()[12..16], &[12.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn packed_b_layout_is_k_major_with_zero_tail() {
        // 2×10 matrix: panel 0 = cols 0..8, panel 1 = cols 8..10 + pads.
        let b: Vec<f32> = (0..20).map(|v| v as f32).collect();
        let p = PackedB::from_f32(&b, 2, 10).unwrap();
        assert_eq!(p.data().len(), packed_b_len(2, 10));
        // Panel 0, k step 1 => cols 0..8 of row 1.
        assert_eq!(&p.data()[8..16], &b[10..18]);
        // Panel 1, k step 0 => cols 8..10 of row 0, then six pads.
        assert_eq!(&p.data()[16..24], &[8.0, 9.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn i8_pack_subtracts_zero_point_exactly() {
        let a = [i8::MIN, -1, 0, 1, i8::MAX, 7];
        let p = PackedA::from_i8(&a, 7, 2, 3).unwrap();
        // Row 0 col 0 = -128 - 7 = -135 (unrepresentable in i8, exact in i16).
        assert_eq!(p.data()[0], -135);
        // A cell equal to the zero point (row 1, col 2) packs to exactly 0.
        assert_eq!(p.data()[2 * MR + 1], 0);
    }

    #[test]
    fn pack_counter_counts_a_side_packs_only() {
        let before = pack_invocations();
        let _ = PackedA::from_i8(&[1, 2, 3, 4], 0, 2, 2).unwrap();
        let _ = PackedB::from_i8(&[1, 2, 3, 4], 0, 2, 2).unwrap();
        let _ = PackedB::from_f32(&[1.0; 4], 2, 2).unwrap();
        assert_eq!(pack_invocations() - before, 1, "only A-side packs count");
    }

    #[test]
    fn wrong_lengths_are_errors_not_panics() {
        assert!(PackedA::from_f32(&[0.0; 3], 2, 2).is_err());
        assert!(PackedB::from_i8(&[0; 5], 0, 2, 2).is_err());
        let mut dst = vec![0i16; packed_a_pairs_len(2, 3) + 1];
        assert!(pack_a_i8_pairs_into(&mut dst, &[0; 6], 0, 2, 3).is_err());
    }

    #[test]
    fn pair_pack_a_interleaves_adjacent_k_steps() {
        // 2×3 matrix, rows [1,2,3] / [4,5,6]; kpairs = 2 with a zero pad.
        let a = [1i8, 2, 3, 4, 5, 6];
        let mut dst = vec![0i16; packed_a_pairs_len(2, 3)];
        pack_a_i8_pairs_into(&mut dst, &a, 0, 2, 3).unwrap();
        // k-pair 0: [a(0,0),a(0,1), a(1,0),a(1,1), pad rows...].
        assert_eq!(&dst[..MR * 2], &[1, 2, 4, 5, 0, 0, 0, 0]);
        // k-pair 1: [a(0,2),0, a(1,2),0, ...] — odd k pads the pair.
        assert_eq!(&dst[MR * 2..MR * 4], &[3, 0, 6, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn pair_pack_b_interleaves_adjacent_k_steps() {
        // 3×2 matrix (k=3, n=2): rows [1,2]/[3,4]/[5,6].
        let b = [1i8, 2, 3, 4, 5, 6];
        let mut dst = vec![0i16; packed_b_pairs_len(3, 2)];
        pack_b_i8_pairs_into(&mut dst, &b, 0, 3, 2).unwrap();
        // k-pair 0, cols 0..2: [b(0,0),b(1,0), b(0,1),b(1,1), pads...].
        assert_eq!(&dst[..6], &[1, 3, 2, 4, 0, 0]);
        // k-pair 1: [b(2,0),0, b(2,1),0, ...].
        assert_eq!(&dst[NR * 2..NR * 2 + 4], &[5, 0, 6, 0]);
    }

    #[test]
    fn pair_pack_subtracts_zero_point_and_zeroes_pads() {
        let b = [10i8, 10, 10, 10]; // 2×2, all equal to zp
        let mut dst = vec![0xAAu16 as i16; packed_b_pairs_len(2, 2)];
        pack_b_i8_pairs_into(&mut dst, &b, 10, 2, 2).unwrap();
        assert!(dst.iter().all(|&v| v == 0), "zp cells and pads must pack to 0");
    }

    #[test]
    fn packed_conv_kpair_layout_round_trips() {
        let wshape = Shape4::new(2, 3, 1, 1); // kg=2, kdim=3
        let w = Tensor::from_vec(wshape, vec![1i8, 2, 3, 4, 5, 6]).unwrap();
        let params = Conv2dParams::new(1, 1);
        let p = PackedConv2d::pack_with_layout(
            &w,
            QuantParams::new(1.0, 0),
            &params,
            PackLayout::KPair,
        )
        .unwrap();
        assert_eq!(p.layout(), PackLayout::KPair);
        assert_eq!(p.group(0).len(), packed_a_pairs_len(2, 3));
        assert_eq!(&p.group(0)[..MR * 2], &[1, 2, 4, 5, 0, 0, 0, 0]);
        let panel = PackedConv2d::pack(&w, QuantParams::new(1.0, 0), &params).unwrap();
        assert_eq!(panel.layout(), PackLayout::Panel);
    }

    #[test]
    fn packed_conv_groups_are_independent_blocks() {
        let wshape = Shape4::new(4, 2, 1, 1); // 2 groups of kg=2, kdim=2
        let w = Tensor::from_vec(wshape, vec![1i8, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let params = Conv2dParams::new(1, 1).with_groups(2);
        let p = PackedConv2d::pack(&w, QuantParams::new(1.0, 0), &params).unwrap();
        assert_eq!(p.groups(), 2);
        // Group 1's first k-step holds rows {5,6..} column 0 => [5, 7, pad, pad].
        assert_eq!(&p.group(1)[..4], &[5, 7, 0, 0]);
    }

    #[test]
    fn packed_conv_rejects_bad_groups() {
        let w = Tensor::<i8>::zeros(Shape4::new(3, 1, 1, 1));
        let params = Conv2dParams::new(1, 1).with_groups(2);
        assert!(PackedConv2d::pack(&w, QuantParams::new(1.0, 0), &params).is_err());
    }
}
