//! Pooling operators: max, average and global-average.
//!
//! Inner loops stream contiguous [`Tensor::row`] slices with the padding
//! clamp hoisted out of the window scan (see `conv::kernel_ranges`).

use crate::error::TensorError;
use crate::ops::conv::kernel_ranges;
use crate::shape::{conv_out_dim, Shape4};
use crate::tensor::Tensor;

/// Pooling window configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolParams {
    /// Window height/width (square windows only).
    pub window: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on all sides.
    pub padding: usize,
}

impl PoolParams {
    /// Creates a pooling configuration with stride equal to the window.
    #[must_use]
    pub const fn new(window: usize) -> Self {
        Self { window, stride: window, padding: 0 }
    }

    /// Sets the stride.
    #[must_use]
    pub const fn with_stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Sets the padding.
    #[must_use]
    pub const fn with_padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    fn out_dims(&self, input: Shape4) -> Result<(usize, usize), TensorError> {
        if self.window == 0 {
            return Err(TensorError::InvalidParam { what: "pool window must be nonzero" });
        }
        let oh = conv_out_dim(input.h, self.window, self.stride, self.padding);
        let ow = conv_out_dim(input.w, self.window, self.stride, self.padding);
        match (oh, ow) {
            (Some(oh), Some(ow)) if oh > 0 && ow > 0 => Ok((oh, ow)),
            _ => Err(TensorError::EmptyOutput { input }),
        }
    }
}

/// Max pooling. Padded cells are ignored (never win the max).
///
/// # Errors
/// Returns an error for a zero-size window or an empty output.
pub fn max_pool(input: &Tensor<f32>, params: &PoolParams) -> Result<Tensor<f32>, TensorError> {
    let ishape = input.shape();
    let (oh, ow) = params.out_dims(ishape)?;
    let (stride, padding) = (params.stride, params.padding);
    let mut out = Tensor::zeros(Shape4::new(ishape.n, ishape.c, oh, ow));
    let ry_ranges = kernel_ranges(oh, stride, padding, ishape.h, params.window);
    let rx_ranges = kernel_ranges(ow, stride, padding, ishape.w, params.window);
    for n in 0..ishape.n {
        for c in 0..ishape.c {
            for oy in 0..oh {
                let (ry_lo, ry_hi) = ry_ranges[oy];
                let orow = out.row_mut(n, c, oy);
                for (ox, o) in orow.iter_mut().enumerate() {
                    let (rx_lo, rx_hi) = rx_ranges[ox];
                    let mut best = f32::NEG_INFINITY;
                    for ry in ry_lo..ry_hi {
                        let irow = input.row(n, c, oy * stride + ry - padding);
                        if stride == 1 && rx_lo < rx_hi {
                            let ix0 = ox + rx_lo - padding;
                            for &v in &irow[ix0..ix0 + (rx_hi - rx_lo)] {
                                best = best.max(v);
                            }
                        } else {
                            for rx in rx_lo..rx_hi {
                                best = best.max(irow[ox * stride + rx - padding]);
                            }
                        }
                    }
                    *o = best;
                }
            }
        }
    }
    Ok(out)
}

/// Average pooling. The divisor is the number of *valid* (non-padded) cells.
///
/// # Errors
/// Returns an error for a zero-size window or an empty output.
pub fn avg_pool(input: &Tensor<f32>, params: &PoolParams) -> Result<Tensor<f32>, TensorError> {
    let ishape = input.shape();
    let (oh, ow) = params.out_dims(ishape)?;
    let (stride, padding) = (params.stride, params.padding);
    let mut out = Tensor::zeros(Shape4::new(ishape.n, ishape.c, oh, ow));
    let ry_ranges = kernel_ranges(oh, stride, padding, ishape.h, params.window);
    let rx_ranges = kernel_ranges(ow, stride, padding, ishape.w, params.window);
    for n in 0..ishape.n {
        for c in 0..ishape.c {
            for oy in 0..oh {
                let (ry_lo, ry_hi) = ry_ranges[oy];
                let orow = out.row_mut(n, c, oy);
                for (ox, o) in orow.iter_mut().enumerate() {
                    let (rx_lo, rx_hi) = rx_ranges[ox];
                    let mut sum = 0.0;
                    for ry in ry_lo..ry_hi {
                        let irow = input.row(n, c, oy * stride + ry - padding);
                        if stride == 1 && rx_lo < rx_hi {
                            let ix0 = ox + rx_lo - padding;
                            sum += irow[ix0..ix0 + (rx_hi - rx_lo)].iter().sum::<f32>();
                        } else {
                            for rx in rx_lo..rx_hi {
                                sum += irow[ox * stride + rx - padding];
                            }
                        }
                    }
                    let count = (ry_hi - ry_lo) * (rx_hi - rx_lo);
                    *o = if count > 0 { sum / count as f32 } else { 0.0 };
                }
            }
        }
    }
    Ok(out)
}

/// Global average pooling: collapses H×W to 1×1 per channel.
#[must_use]
pub fn global_avg_pool(input: &Tensor<f32>) -> Tensor<f32> {
    let ishape = input.shape();
    let mut out = Tensor::zeros(Shape4::new(ishape.n, ishape.c, 1, 1));
    let area = (ishape.h * ishape.w) as f32;
    for n in 0..ishape.n {
        for c in 0..ishape.c {
            let mut sum = 0.0;
            for y in 0..ishape.h {
                sum += input.row(n, c, y).iter().sum::<f32>();
            }
            out.set(n, c, 0, 0, if area > 0.0 { sum / area } else { 0.0 });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(shape: Shape4) -> Tensor<f32> {
        let data = (0..shape.volume()).map(|i| i as f32).collect();
        Tensor::from_vec(shape, data).unwrap()
    }

    #[test]
    fn max_pool_2x2_picks_window_max() {
        let input = ramp(Shape4::new(1, 1, 4, 4));
        let out = max_pool(&input, &PoolParams::new(2)).unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 1, 2, 2));
        assert_eq!(out.get(0, 0, 0, 0), 5.0);
        assert_eq!(out.get(0, 0, 1, 1), 15.0);
    }

    #[test]
    fn avg_pool_2x2_averages_window() {
        let input = ramp(Shape4::new(1, 1, 4, 4));
        let out = avg_pool(&input, &PoolParams::new(2)).unwrap();
        assert_eq!(out.get(0, 0, 0, 0), (0.0 + 1.0 + 4.0 + 5.0) / 4.0);
    }

    #[test]
    fn avg_pool_padding_divides_by_valid_count_only() {
        let input = Tensor::<f32>::filled(Shape4::new(1, 1, 2, 2), 8.0);
        let p = PoolParams::new(3).with_stride(1).with_padding(1);
        let out = avg_pool(&input, &p).unwrap();
        // Top-left window covers 4 valid cells of value 8 -> average 8.
        assert_eq!(out.get(0, 0, 0, 0), 8.0);
    }

    #[test]
    fn max_pool_ignores_padding() {
        let input = Tensor::<f32>::filled(Shape4::new(1, 1, 2, 2), -3.0);
        let p = PoolParams::new(3).with_stride(1).with_padding(1);
        let out = max_pool(&input, &p).unwrap();
        // Padded zeros must not beat the real -3 values.
        assert_eq!(out.get(0, 0, 0, 0), -3.0);
    }

    #[test]
    fn global_avg_pool_collapses_spatial() {
        let input = ramp(Shape4::new(1, 2, 2, 2));
        let out = global_avg_pool(&input);
        assert_eq!(out.shape(), Shape4::new(1, 2, 1, 1));
        assert_eq!(out.get(0, 0, 0, 0), 1.5);
        assert_eq!(out.get(0, 1, 0, 0), 5.5);
    }

    #[test]
    fn pool_rejects_zero_window() {
        let input = ramp(Shape4::new(1, 1, 4, 4));
        let p = PoolParams { window: 0, stride: 1, padding: 0 };
        assert!(max_pool(&input, &p).is_err());
    }

    #[test]
    fn pool_rejects_window_larger_than_input() {
        let input = ramp(Shape4::new(1, 1, 2, 2));
        assert!(max_pool(&input, &PoolParams::new(5)).is_err());
    }
}
