//! Neural-network operators with switchable kernel backends.
//!
//! Every operator keeps its original straightforward loop nest — the
//! *golden model* that `sushi-accel`'s DPE-array functional simulation is
//! validated against — selectable via [`gemm::KernelPolicy::Naive`]. The
//! hot path is the [`im2col`] + panel-packed microkernel [`gemm`] backend
//! (operand layouts in [`pack`], reusable scratch in [`crate::arena`]),
//! which the default [`gemm::KernelPolicy::Auto`] picks for dense
//! convolutions large enough to amortize the lowering. Quantized results
//! are bit-identical across backends; f32 results agree to reassociation
//! error.

pub mod activation;
pub mod conv;
pub mod epilogue;
pub mod gemm;
pub mod im2col;
pub mod linear;
pub mod pack;
pub mod pool;
