//! Reference neural-network operators.
//!
//! These are deliberately straightforward loop-nest implementations — they
//! are the *golden model* against which `sushi-accel`'s DPE-array functional
//! simulation is validated, so clarity beats speed.

pub mod activation;
pub mod conv;
pub mod linear;
pub mod pool;
