//! Activation functions used by OFA-ResNet50 and OFA-MobileNetV3.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Activation kinds present in the SUSHI workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Identity (no activation).
    #[default]
    None,
    /// `max(0, x)` — ResNet blocks.
    Relu,
    /// `min(max(0, x), 6)` — mobile nets.
    Relu6,
    /// `x * relu6(x + 3) / 6` — MobileNetV3 h-swish.
    HSwish,
    /// `relu6(x + 3) / 6` — MobileNetV3 squeeze-excite gate.
    HSigmoid,
}

impl Activation {
    /// Applies the activation to a scalar.
    #[inline]
    #[must_use]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Relu => x.max(0.0),
            Activation::Relu6 => x.clamp(0.0, 6.0),
            Activation::HSwish => x * (x + 3.0).clamp(0.0, 6.0) / 6.0,
            Activation::HSigmoid => (x + 3.0).clamp(0.0, 6.0) / 6.0,
        }
    }

    /// Applies the activation elementwise to a mutable slice, in place.
    ///
    /// The hot-loop form: callers stream a tensor's backing buffer (or one
    /// [`Tensor::row`]) without allocating an output tensor.
    #[inline]
    pub fn apply_slice(self, xs: &mut [f32]) {
        if self == Activation::None {
            return;
        }
        for x in xs {
            *x = self.apply(*x);
        }
    }

    /// Applies the activation elementwise to a tensor.
    #[must_use]
    pub fn apply_tensor(self, t: &Tensor<f32>) -> Tensor<f32> {
        let mut out = t.clone();
        self.apply_slice(out.as_mut_slice());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape4;

    #[test]
    fn relu_clamps_negatives_only() {
        assert_eq!(Activation::Relu.apply(-5.0), 0.0);
        assert_eq!(Activation::Relu.apply(5.0), 5.0);
    }

    #[test]
    fn relu6_clamps_both_sides() {
        assert_eq!(Activation::Relu6.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu6.apply(3.0), 3.0);
        assert_eq!(Activation::Relu6.apply(9.0), 6.0);
    }

    #[test]
    fn hswish_matches_definition_at_key_points() {
        // hswish(-3) = 0, hswish(0) = 0, hswish(3) = 3, hswish(6) = 6.
        assert_eq!(Activation::HSwish.apply(-3.0), 0.0);
        assert_eq!(Activation::HSwish.apply(0.0), 0.0);
        assert_eq!(Activation::HSwish.apply(3.0), 3.0);
        assert_eq!(Activation::HSwish.apply(6.0), 6.0);
    }

    #[test]
    fn hsigmoid_saturates_at_zero_and_one() {
        assert_eq!(Activation::HSigmoid.apply(-4.0), 0.0);
        assert_eq!(Activation::HSigmoid.apply(4.0), 1.0);
        assert_eq!(Activation::HSigmoid.apply(0.0), 0.5);
    }

    #[test]
    fn none_is_identity() {
        assert_eq!(Activation::None.apply(-7.25), -7.25);
    }

    #[test]
    fn apply_tensor_is_elementwise() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 1, 3), vec![-1.0, 0.5, 9.0]).unwrap();
        let out = Activation::Relu6.apply_tensor(&t);
        assert_eq!(out.as_slice(), &[0.0, 0.5, 6.0]);
    }

    #[test]
    fn default_activation_is_none() {
        assert_eq!(Activation::default(), Activation::None);
    }

    #[test]
    fn apply_slice_matches_scalar_apply() {
        let vals = [-7.5, -3.0, -0.1, 0.0, 2.9, 6.0, 11.0];
        for act in [
            Activation::None,
            Activation::Relu,
            Activation::Relu6,
            Activation::HSwish,
            Activation::HSigmoid,
        ] {
            let mut xs = vals;
            act.apply_slice(&mut xs);
            for (x, v) in xs.iter().zip(&vals) {
                assert_eq!(*x, act.apply(*v));
            }
        }
    }
}
