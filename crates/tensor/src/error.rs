//! Error types for tensor construction and operator execution.

use std::fmt;

use crate::shape::Shape4;

/// Errors produced by tensor construction and the reference operators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The provided buffer length does not match the shape's element count.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must agree on a dimension do not.
    ShapeMismatch {
        /// Human-readable description of the conflicting dimension.
        what: &'static str,
        /// Shape of the left-hand operand.
        lhs: Shape4,
        /// Shape of the right-hand operand.
        rhs: Shape4,
    },
    /// An operator parameter is invalid (e.g. zero stride).
    InvalidParam {
        /// Description of the offending parameter.
        what: &'static str,
    },
    /// The requested spatial output would be empty (input smaller than kernel).
    EmptyOutput {
        /// Input shape that led to the empty output.
        input: Shape4,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "buffer length {actual} does not match shape volume {expected}")
            }
            TensorError::ShapeMismatch { what, lhs, rhs } => {
                write!(f, "shape mismatch on {what}: {lhs} vs {rhs}")
            }
            TensorError::InvalidParam { what } => write!(f, "invalid parameter: {what}"),
            TensorError::EmptyOutput { input } => {
                write!(f, "operator produces empty output for input shape {input}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch_mentions_both_numbers() {
        let e = TensorError::LengthMismatch { expected: 12, actual: 7 };
        let s = e.to_string();
        assert!(s.contains("12") && s.contains('7'));
    }

    #[test]
    fn display_shape_mismatch_mentions_what() {
        let e = TensorError::ShapeMismatch {
            what: "input channels",
            lhs: Shape4::new(1, 3, 8, 8),
            rhs: Shape4::new(4, 5, 3, 3),
        };
        assert!(e.to_string().contains("input channels"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
