//! Four-dimensional NCHW shape arithmetic.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A dense NCHW shape: `(batch, channels, height, width)`.
///
/// All SUSHI workloads are convolutional, so a fixed-rank shape keeps
/// indexing branch-free. Weight tensors reuse the same type with the
/// convention `(K, C, R, S)` = (kernels, input channels, kernel height,
/// kernel width), mirroring the paper's Fig. 5 terminology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape4 {
    /// Batch size `N` (or kernel count `K` for weights).
    pub n: usize,
    /// Channels `C`.
    pub c: usize,
    /// Height `H` (or kernel height `R`).
    pub h: usize,
    /// Width `W` (or kernel width `S`).
    pub w: usize,
}

impl Shape4 {
    /// Creates a new shape.
    ///
    /// # Example
    /// ```
    /// let s = sushi_tensor::Shape4::new(1, 64, 56, 56);
    /// assert_eq!(s.volume(), 64 * 56 * 56);
    /// ```
    #[must_use]
    pub const fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self { n, c, h, w }
    }

    /// Total number of elements.
    #[must_use]
    pub const fn volume(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Row-major (NCHW) strides `(sn, sc, sh, sw)`.
    #[must_use]
    pub const fn strides(&self) -> (usize, usize, usize, usize) {
        (self.c * self.h * self.w, self.h * self.w, self.w, 1)
    }

    /// Flat offset of element `(n, c, h, w)`.
    ///
    /// # Panics
    /// Panics in debug builds if any index is out of bounds.
    #[inline]
    #[must_use]
    pub fn offset(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(
            n < self.n && c < self.c && h < self.h && w < self.w,
            "index ({n},{c},{h},{w}) out of bounds for {self}"
        );
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Flat offset of the first element of row `(n, c, h)`.
    ///
    /// Hot loops iterate `[row_offset .. row_offset + w]` as one contiguous
    /// slice instead of calling [`Shape4::offset`] per element.
    ///
    /// # Panics
    /// Panics in debug builds if any index is out of bounds.
    #[inline]
    #[must_use]
    pub fn row_offset(&self, n: usize, c: usize, h: usize) -> usize {
        debug_assert!(
            n < self.n && c < self.c && h < self.h,
            "row ({n},{c},{h}) out of bounds for {self}"
        );
        ((n * self.c + c) * self.h + h) * self.w
    }

    /// Returns the same shape with a different channel count.
    #[must_use]
    pub const fn with_c(mut self, c: usize) -> Self {
        self.c = c;
        self
    }

    /// Returns the same shape with a different batch/kernel count.
    #[must_use]
    pub const fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}x{}x{}x{}]", self.n, self.c, self.h, self.w)
    }
}

/// Computes the spatial output size of a convolution/pooling window.
///
/// Returns `None` when the padded input is smaller than the kernel.
///
/// # Example
/// ```
/// use sushi_tensor::shape::conv_out_dim;
/// assert_eq!(conv_out_dim(56, 3, 1, 1), Some(56)); // same-padding 3x3
/// assert_eq!(conv_out_dim(56, 3, 2, 1), Some(28)); // strided
/// assert_eq!(conv_out_dim(2, 5, 1, 0), None);      // kernel larger than input
/// ```
#[must_use]
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, padding: usize) -> Option<usize> {
    let padded = input + 2 * padding;
    if padded < kernel || stride == 0 {
        return None;
    }
    Some((padded - kernel) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_counts_all_elements() {
        assert_eq!(Shape4::new(2, 3, 4, 5).volume(), 120);
    }

    #[test]
    fn volume_of_degenerate_dim_is_zero() {
        assert_eq!(Shape4::new(1, 0, 4, 5).volume(), 0);
    }

    #[test]
    fn offset_is_row_major_nchw() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.offset(0, 0, 0, 0), 0);
        assert_eq!(s.offset(0, 0, 0, 1), 1);
        assert_eq!(s.offset(0, 0, 1, 0), 5);
        assert_eq!(s.offset(0, 1, 0, 0), 20);
        assert_eq!(s.offset(1, 0, 0, 0), 60);
        assert_eq!(s.offset(1, 2, 3, 4), 119);
    }

    #[test]
    fn row_offset_matches_offset_of_first_column() {
        let s = Shape4::new(2, 3, 4, 5);
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..4 {
                    assert_eq!(s.row_offset(n, c, h), s.offset(n, c, h, 0));
                }
            }
        }
    }

    #[test]
    fn strides_match_offset() {
        let s = Shape4::new(2, 3, 4, 5);
        let (sn, sc, sh, sw) = s.strides();
        assert_eq!(s.offset(1, 2, 3, 4), sn + 2 * sc + 3 * sh + 4 * sw);
    }

    #[test]
    fn conv_out_dim_same_padding() {
        assert_eq!(conv_out_dim(224, 7, 2, 3), Some(112));
        assert_eq!(conv_out_dim(7, 1, 1, 0), Some(7));
    }

    #[test]
    fn conv_out_dim_rejects_zero_stride() {
        assert_eq!(conv_out_dim(8, 3, 0, 1), None);
    }

    #[test]
    fn conv_out_dim_rejects_too_small_input() {
        assert_eq!(conv_out_dim(2, 7, 1, 1), None);
    }

    #[test]
    fn with_c_and_with_n_replace_single_dims() {
        let s = Shape4::new(1, 2, 3, 4).with_c(9).with_n(7);
        assert_eq!(s, Shape4::new(7, 9, 3, 4));
    }

    #[test]
    fn display_is_nonempty_and_contains_dims() {
        let s = Shape4::new(1, 64, 56, 57).to_string();
        assert!(s.contains("64") && s.contains("57"));
    }
}
