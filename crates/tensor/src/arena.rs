//! Reusable scratch memory for the serving hot path.
//!
//! Every im2col + packed-GEMM convolution needs four transient buffers: the
//! raw patch matrix, the packed copies of both GEMM operands and the `i32`
//! (or `f32`) accumulator. Allocating them per call — as PR 2 did with
//! `vec!` — puts the allocator on the per-query critical path. An [`Arena`]
//! instead owns one grow-only buffer per role: the first pass through a
//! layer shape grows it to the high-water mark, and every subsequent pass
//! reuses the same memory with **zero heap allocation**.
//!
//! Lifetime rules:
//!
//! * One arena per executing thread/worker — an `Arena` hands out `&mut`
//!   slices, so it is inherently single-borrower. Serving workers each own
//!   one and reuse it across queries; `forward`/`forward_batch` without an
//!   explicit arena create a private one per call.
//! * Borrows live for one kernel invocation. The conv kernels request all
//!   the slices they need in a single call (the methods below return
//!   disjoint fields, so the borrows coexist), use them, and drop them
//!   before returning — nothing in an arena outlives the operator call
//!   that asked for it.
//! * Contents are unspecified between calls. Every kernel fully overwrites
//!   the slices it requests (packing writes padding explicitly, the
//!   accumulator is zero-filled), so stale data can never leak into
//!   results.

/// Grow-only scratch buffers shared by the im2col/packing/GEMM kernels.
///
/// See the module docs for the ownership and lifetime rules.
#[derive(Debug, Default)]
pub struct Arena {
    patches_i8: Vec<i8>,
    pa_i16: Vec<i16>,
    pb_i16: Vec<i16>,
    acc_i32: Vec<i32>,
    patches_f32: Vec<f32>,
    pa_f32: Vec<f32>,
    pb_f32: Vec<f32>,
    acc_f32: Vec<f32>,
}

fn grow<T: Default + Clone>(buf: &mut Vec<T>, len: usize) -> &mut [T] {
    if buf.len() < len {
        buf.resize(len, T::default());
    }
    &mut buf[..len]
}

impl Arena {
    /// Creates an empty arena; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch for one quantized conv call: `(patches, packed_a, packed_b,
    /// acc)` of exactly the requested lengths. Contents are unspecified;
    /// callers overwrite them fully.
    pub(crate) fn i8_conv(
        &mut self,
        patches: usize,
        pa: usize,
        pb: usize,
        acc: usize,
    ) -> (&mut [i8], &mut [i16], &mut [i16], &mut [i32]) {
        (
            grow(&mut self.patches_i8, patches),
            grow(&mut self.pa_i16, pa),
            grow(&mut self.pb_i16, pb),
            grow(&mut self.acc_i32, acc),
        )
    }

    /// Scratch for one f32 conv call: `(patches, packed_a, packed_b, acc)`.
    pub(crate) fn f32_conv(
        &mut self,
        patches: usize,
        pa: usize,
        pb: usize,
        acc: usize,
    ) -> (&mut [f32], &mut [f32], &mut [f32], &mut [f32]) {
        (
            grow(&mut self.patches_f32, patches),
            grow(&mut self.pa_f32, pa),
            grow(&mut self.pb_f32, pb),
            grow(&mut self.acc_f32, acc),
        )
    }

    /// Total bytes currently reserved across all scratch buffers (the
    /// high-water mark of every shape served so far).
    #[must_use]
    pub fn reserved_bytes(&self) -> usize {
        self.patches_i8.len()
            + 2 * (self.pa_i16.len() + self.pb_i16.len())
            + 4 * self.acc_i32.len()
            + 4 * (self.patches_f32.len() + self.pa_f32.len() + self.pb_f32.len())
            + 4 * self.acc_f32.len()
    }

    /// Releases all reserved memory (buffers re-grow on next use).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_grow_to_high_water_mark_and_are_reused() {
        let mut arena = Arena::new();
        {
            let (p, a, b, c) = arena.i8_conv(10, 20, 30, 40);
            assert_eq!((p.len(), a.len(), b.len(), c.len()), (10, 20, 30, 40));
        }
        let bytes_after_big = {
            let _ = arena.i8_conv(100, 1, 1, 1);
            arena.reserved_bytes()
        };
        // A smaller request must not shrink the reservation (reuse, not
        // realloc) and must return exactly the requested view.
        let (p, ..) = arena.i8_conv(5, 1, 1, 1);
        assert_eq!(p.len(), 5);
        assert_eq!(arena.reserved_bytes(), bytes_after_big);
    }

    #[test]
    fn reset_releases_memory() {
        let mut arena = Arena::new();
        let _ = arena.f32_conv(64, 64, 64, 64);
        assert!(arena.reserved_bytes() > 0);
        arena.reset();
        assert_eq!(arena.reserved_bytes(), 0);
    }
}
