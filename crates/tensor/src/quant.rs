//! Int8 quantization with zero points and scales.
//!
//! The paper (footnote 3) quantizes weights, input activations and zero
//! points to `int8`, and the quantization scale to `int32` fixed point.
//! SushiAccel's Zero-Subtraction (ZS) stage computes
//! `(iAct − zp_a) · (w − zp_w)` in int32 before rescaling — this module
//! provides the same semantics so the accelerator's functional model can be
//! validated bit-exactly.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Affine quantization parameters for one tensor: `real = scale * (q - zero_point)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Multiplicative scale (strictly positive).
    pub scale: f32,
    /// Zero point in the int8 domain.
    pub zero_point: i8,
}

impl QuantParams {
    /// Creates quantization parameters.
    ///
    /// # Panics
    /// Panics if `scale` is not strictly positive and finite.
    #[must_use]
    pub fn new(scale: f32, zero_point: i8) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "quantization scale must be positive, got {scale}"
        );
        Self { scale, zero_point }
    }

    /// Symmetric parameters (zero point 0) covering `[-max_abs, max_abs]`.
    ///
    /// A `max_abs` of zero degenerates to the smallest positive scale so that
    /// all-zero tensors still quantize losslessly.
    #[must_use]
    pub fn symmetric(max_abs: f32) -> Self {
        let max_abs = if max_abs > 0.0 { max_abs } else { f32::MIN_POSITIVE };
        Self { scale: max_abs / 127.0, zero_point: 0 }
    }

    /// Asymmetric parameters covering `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is non-finite.
    #[must_use]
    pub fn asymmetric(lo: f32, hi: f32) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "invalid range [{lo}, {hi}]");
        let span = (hi - lo).max(f32::MIN_POSITIVE);
        let scale = span / 255.0;
        let zp = (-128.0 - lo / scale).round().clamp(-128.0, 127.0) as i8;
        Self { scale, zero_point: zp }
    }

    /// Quantizes a single value.
    #[inline]
    #[must_use]
    pub fn quantize(&self, value: f32) -> i8 {
        let q = (value / self.scale).round() + f32::from(self.zero_point);
        q.clamp(-128.0, 127.0) as i8
    }

    /// Dequantizes a single value.
    #[inline]
    #[must_use]
    pub fn dequantize(&self, q: i8) -> f32 {
        self.scale * (f32::from(q) - f32::from(self.zero_point))
    }
}

impl Default for QuantParams {
    /// Unit scale, zero offset — the identity mapping over `[-128, 127]`.
    fn default() -> Self {
        Self { scale: 1.0, zero_point: 0 }
    }
}

/// Quantizes an `f32` tensor with the given parameters.
#[must_use]
pub fn quantize_tensor(t: &Tensor<f32>, params: QuantParams) -> Tensor<i8> {
    t.map(|v| params.quantize(v))
}

/// Dequantizes an `i8` tensor with the given parameters.
#[must_use]
pub fn dequantize_tensor(t: &Tensor<i8>, params: QuantParams) -> Tensor<f32> {
    t.map(|q| params.dequantize(q))
}

/// Chooses symmetric parameters from a tensor's observed dynamic range.
#[must_use]
pub fn calibrate_symmetric(t: &Tensor<f32>) -> QuantParams {
    let max_abs = t.as_slice().iter().fold(0.0_f32, |m, &v| m.max(v.abs()));
    QuantParams::symmetric(max_abs)
}

/// Requantizes an int32 accumulator back to int8 output activations.
///
/// `acc_scale` is `in_scale * w_scale / out_scale`; the output zero point is
/// added after rescaling, as done by the accelerator's output stage.
#[inline]
#[must_use]
pub fn requantize_accumulator(acc: i32, acc_scale: f32, out_zp: i8) -> i8 {
    let v = (acc as f32 * acc_scale).round() + f32::from(out_zp);
    v.clamp(-128.0, 127.0) as i8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape4;

    #[test]
    fn symmetric_roundtrip_is_within_half_scale() {
        let p = QuantParams::symmetric(4.0);
        for &v in &[-4.0, -1.3, 0.0, 0.02, 3.999] {
            let rt = p.dequantize(p.quantize(v));
            assert!((rt - v).abs() <= p.scale / 2.0 + 1e-6, "v={v} rt={rt}");
        }
    }

    #[test]
    fn symmetric_handles_zero_range() {
        let p = QuantParams::symmetric(0.0);
        assert_eq!(p.quantize(0.0), 0);
        assert_eq!(p.dequantize(0), 0.0);
    }

    #[test]
    fn asymmetric_maps_lo_near_min() {
        let p = QuantParams::asymmetric(0.0, 6.0); // ReLU6-style range
        let q_lo = p.quantize(0.0);
        let q_hi = p.quantize(6.0);
        assert!(q_lo <= -127, "lo mapped to {q_lo}");
        assert!(q_hi >= 126, "hi mapped to {q_hi}");
    }

    #[test]
    fn quantize_saturates_out_of_range() {
        let p = QuantParams::symmetric(1.0);
        assert_eq!(p.quantize(100.0), 127);
        assert_eq!(p.quantize(-100.0), -128);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn new_rejects_zero_scale() {
        let _ = QuantParams::new(0.0, 0);
    }

    #[test]
    fn tensor_roundtrip_error_bounded() {
        let t =
            Tensor::from_vec(Shape4::new(1, 1, 1, 5), vec![-2.0, -0.5, 0.0, 1.25, 2.0]).unwrap();
        let p = calibrate_symmetric(&t);
        let rt = dequantize_tensor(&quantize_tensor(&t, p), p);
        assert!(t.max_abs_diff(&rt).unwrap() <= p.scale / 2.0 + 1e-6);
    }

    #[test]
    fn requantize_accumulator_clamps() {
        assert_eq!(requantize_accumulator(1 << 20, 1.0, 0), 127);
        assert_eq!(requantize_accumulator(-(1 << 20), 1.0, 0), -128);
        assert_eq!(requantize_accumulator(100, 0.01, 3), 4);
    }

    #[test]
    fn default_is_identity_over_int8() {
        let p = QuantParams::default();
        for q in [-128i8, -1, 0, 1, 127] {
            assert_eq!(p.quantize(f32::from(q)), q);
        }
    }
}
