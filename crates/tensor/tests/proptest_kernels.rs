//! Property-based equivalence suite for the kernel backends: the im2col +
//! packed-GEMM path must reproduce the naive oracle across random shapes,
//! strides, paddings and group structures — bit-identically for int8
//! (integer accumulation is associative) and within 1e-4 for f32 — and the
//! packed kernels themselves must match the scalar reference across
//! `m % MR != 0` / `n % NR != 0` tails, zero-point extremes, pre-packed
//! weights, and the AVX2-vs-portable microkernel split.

use proptest::prelude::*;

use sushi_tensor::ops::conv::{conv2d_f32_with, conv2d_i8_prepacked, conv2d_i8_with, Conv2dParams};
use sushi_tensor::ops::gemm::{
    gemm_f32_packed, gemm_f32_packed_portable, gemm_i8_packed, gemm_i8_packed_pairs,
    gemm_i8_packed_pairs_portable, gemm_i8_packed_portable,
};
use sushi_tensor::ops::linear::linear_f32_with;
use sushi_tensor::ops::pack::{
    pack_a_f32_into, pack_a_i8_into, pack_a_i8_pairs_into, pack_b_f32_into, pack_b_i8_into,
    pack_b_i8_pairs_into, packed_a_len, packed_a_pairs_len, packed_b_len, packed_b_pairs_len,
    PackedConv2d, MR, NR,
};
use sushi_tensor::shape::conv_out_dim;
use sushi_tensor::{Arena, DetRng, KernelPolicy, QuantParams, Shape4, Tensor};

/// A random-but-valid conv problem: `(input, weights, params)` shapes.
///
/// Covers dense (`groups == 1`), grouped (`1 < groups < C`) and depthwise
/// (`groups == C`) structures, kernels 1/3/5, strides 1–2 and paddings up
/// to `kernel/2`.
fn conv_cases() -> impl Strategy<Value = (Shape4, Shape4, Conv2dParams)> {
    (
        1usize..=2,                                            // batch
        1usize..=3,                                            // channels per group
        1usize..=3,                                            // groups
        1usize..=3,                                            // kernels per group
        4usize..=9,                                            // spatial size
        prop_oneof![Just(1usize), Just(3usize), Just(5usize)], // kernel
        1usize..=2,                                            // stride
        0usize..=2,                                            // padding
    )
        .prop_map(|(n, cg, groups, kg, hw, ks, stride, padding)| {
            let padding = padding.min(ks / 2 + 1);
            let input = Shape4::new(n, cg * groups, hw, hw);
            let weights = Shape4::new(kg * groups, cg, ks, ks);
            let params = Conv2dParams::new(ks, ks)
                .with_stride(stride)
                .with_padding(padding)
                .with_groups(groups);
            (input, weights, params)
        })
}

fn depthwise_cases() -> impl Strategy<Value = (Shape4, Shape4, Conv2dParams)> {
    (1usize..=8, 4usize..=9, prop_oneof![Just(3usize), Just(5usize)], 1usize..=2).prop_map(
        |(c, hw, ks, stride)| {
            let input = Shape4::new(1, c, hw, hw);
            let weights = Shape4::new(c, 1, ks, ks);
            let params =
                Conv2dParams::new(ks, ks).with_stride(stride).with_padding(ks / 2).with_groups(c);
            (input, weights, params)
        },
    )
}

fn rand_f32(shape: Shape4, seed: u64) -> Tensor<f32> {
    let mut rng = DetRng::new(seed);
    Tensor::from_vec(shape, (0..shape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect())
        .unwrap()
}

fn rand_i8(shape: Shape4, seed: u64) -> Tensor<i8> {
    let mut rng = DetRng::new(seed);
    Tensor::from_vec(shape, (0..shape.volume()).map(|_| rng.next_i8()).collect()).unwrap()
}

fn output_nonempty(ishape: Shape4, params: &Conv2dParams) -> bool {
    conv_out_dim(ishape.h, params.kernel_h, params.stride, params.padding).is_some_and(|d| d > 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// f32: the GEMM backend tracks the naive oracle within 1e-4.
    #[test]
    fn f32_gemm_matches_naive((ishape, wshape, params) in conv_cases(), seed in 0u64..10_000) {
        prop_assume!(output_nonempty(ishape, &params));
        let x = rand_f32(ishape, seed);
        let w = rand_f32(wshape, seed + 1);
        let bias: Vec<f32> = {
            let mut rng = DetRng::new(seed + 2);
            (0..wshape.n).map(|_| rng.uniform_f32(-1.0, 1.0)).collect()
        };
        let naive =
            conv2d_f32_with(&x, &w, Some(&bias), &params, KernelPolicy::Naive).unwrap();
        let gemm =
            conv2d_f32_with(&x, &w, Some(&bias), &params, KernelPolicy::Im2colGemm).unwrap();
        let err = naive.max_abs_diff(&gemm).unwrap();
        prop_assert!(err <= 1e-4, "f32 backends diverged by {err} on {ishape}*{wshape} {params:?}");
    }

    /// int8: the GEMM backend is bit-identical to the naive oracle,
    /// including nonzero zero points and bias.
    #[test]
    fn i8_gemm_is_bit_identical(
        (ishape, wshape, params) in conv_cases(),
        seed in 0u64..10_000,
        zp_in in -9i8..9,
        zp_w in -9i8..9,
    ) {
        prop_assume!(output_nonempty(ishape, &params));
        let x = rand_i8(ishape, seed);
        let w = rand_i8(wshape, seed + 1);
        let in_q = QuantParams::new(0.05, zp_in);
        let w_q = QuantParams::new(0.02, zp_w);
        let out_q = QuantParams::new(0.4, 3);
        let bias: Option<Vec<i32>> = Some({
            let mut rng = DetRng::new(seed + 2);
            (0..wshape.n).map(|_| (rng.next_u64() % 600) as i32 - 300).collect()
        });
        let naive = conv2d_i8_with(
            &x, in_q, &w, w_q, bias.as_deref(), out_q, &params, KernelPolicy::Naive,
        ).unwrap();
        let gemm = conv2d_i8_with(
            &x, in_q, &w, w_q, bias.as_deref(), out_q, &params, KernelPolicy::Im2colGemm,
        ).unwrap();
        prop_assert_eq!(naive, gemm);
    }

    /// Depthwise edge case (the shape `Auto` keeps on the direct loops):
    /// forcing the GEMM backend must still be bit-identical.
    #[test]
    fn depthwise_i8_gemm_is_bit_identical(
        (ishape, wshape, params) in depthwise_cases(),
        seed in 0u64..10_000,
    ) {
        prop_assume!(output_nonempty(ishape, &params));
        let x = rand_i8(ishape, seed);
        let w = rand_i8(wshape, seed + 1);
        let q = QuantParams::new(0.03, -5);
        let naive =
            conv2d_i8_with(&x, q, &w, q, None, q, &params, KernelPolicy::Naive).unwrap();
        let gemm =
            conv2d_i8_with(&x, q, &w, q, None, q, &params, KernelPolicy::Im2colGemm).unwrap();
        prop_assert_eq!(naive, gemm);
    }

    /// `Auto` must agree with whichever backend it picks — i.e. with both.
    #[test]
    fn auto_i8_matches_naive((ishape, wshape, params) in conv_cases(), seed in 0u64..10_000) {
        prop_assume!(output_nonempty(ishape, &params));
        let x = rand_i8(ishape, seed);
        let w = rand_i8(wshape, seed + 1);
        let q = QuantParams::new(0.05, 4);
        let naive = conv2d_i8_with(&x, q, &w, q, None, q, &params, KernelPolicy::Naive).unwrap();
        let auto = conv2d_i8_with(&x, q, &w, q, None, q, &params, KernelPolicy::Auto).unwrap();
        prop_assert_eq!(naive, auto);
    }

    /// The packed i8 kernels are bit-identical to the scalar triple loop
    /// across random shapes (the `1..=13` / `1..=21` ranges hit `m % MR !=
    /// 0` and `n % NR != 0` tails constantly) and the *full* zero-point
    /// range, including the ±extremes where `a − zp` escapes `i8`.
    #[test]
    fn packed_i8_gemm_matches_scalar_reference(
        m in 1usize..=13,
        k in 1usize..=40,
        n in 1usize..=21,
        zp_a in i8::MIN..=i8::MAX,
        zp_b in i8::MIN..=i8::MAX,
        seed in 0u64..10_000,
    ) {
        let mut rng = DetRng::new(seed);
        let a: Vec<i8> = (0..m * k).map(|_| rng.next_i8()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| rng.next_i8()).collect();
        let mut pa = vec![0i16; packed_a_len(m, k)];
        let mut pb = vec![0i16; packed_b_len(k, n)];
        pack_a_i8_into(&mut pa, &a, zp_a, m, k).unwrap();
        pack_b_i8_into(&mut pb, &b, zp_b, k, n).unwrap();
        let mut c = vec![0i32; m * n];
        gemm_i8_packed(m, k, n, &pa, &pb, &mut c).unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for kk in 0..k {
                    acc += (i32::from(a[i * k + kk]) - i32::from(zp_a))
                        * (i32::from(b[kk * n + j]) - i32::from(zp_b));
                }
                prop_assert_eq!(c[i * n + j], acc, "({},{}) of {}x{}x{}", i, j, m, k, n);
            }
        }
        // Dispatched (possibly AVX2) and portable microkernels agree
        // bit-for-bit; on machines without AVX2 this is trivially true.
        let mut portable = vec![0i32; m * n];
        gemm_i8_packed_portable(m, k, n, &pa, &pb, &mut portable).unwrap();
        prop_assert_eq!(c, portable);
    }

    /// The packed f32 kernels track the scalar triple loop within 1e-4,
    /// and the AVX2 (FMA) and portable microkernels agree within the same
    /// tolerance when the feature is detected.
    #[test]
    fn packed_f32_gemm_matches_scalar_reference(
        m in 1usize..=11,
        k in 1usize..=48,
        n in 1usize..=19,
        seed in 0u64..10_000,
    ) {
        let mut rng = DetRng::new(seed ^ 0xF32);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
        let mut pa = vec![0.0f32; packed_a_len(m, k)];
        let mut pb = vec![0.0f32; packed_b_len(k, n)];
        pack_a_f32_into(&mut pa, &a, m, k).unwrap();
        pack_b_f32_into(&mut pb, &b, k, n).unwrap();
        let mut c = vec![0.0f32; m * n];
        gemm_f32_packed(m, k, n, &pa, &pb, &mut c).unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for kk in 0..k {
                    acc += f64::from(a[i * k + kk]) * f64::from(b[kk * n + j]);
                }
                let got = f64::from(c[i * n + j]);
                prop_assert!((got - acc).abs() <= 1e-4, "({},{}): {} vs {}", i, j, got, acc);
            }
        }
        let mut portable = vec![0.0f32; m * n];
        gemm_f32_packed_portable(m, k, n, &pa, &pb, &mut portable).unwrap();
        for (x, y) in c.iter().zip(&portable) {
            prop_assert!((x - y).abs() <= 1e-4, "simd {} vs portable {}", x, y);
        }
    }

    /// Weights packed once via `PackedConv2d` serve bit-identical results
    /// to the naive conv oracle across random conv problems, with the
    /// arena reused across queries.
    #[test]
    fn prepacked_conv_i8_is_bit_identical(
        (ishape, wshape, params) in conv_cases(),
        seed in 0u64..10_000,
        zp_in in i8::MIN..=i8::MAX,
        zp_w in i8::MIN..=i8::MAX,
    ) {
        prop_assume!(output_nonempty(ishape, &params));
        let x = rand_i8(ishape, seed);
        let w = rand_i8(wshape, seed + 1);
        let in_q = QuantParams::new(0.05, zp_in);
        let w_q = QuantParams::new(0.02, zp_w);
        let out_q = QuantParams::new(0.4, 3);
        let naive = conv2d_i8_with(
            &x, in_q, &w, w_q, None, out_q, &params, KernelPolicy::Naive,
        ).unwrap();
        let packed = PackedConv2d::pack(&w, w_q, &params).unwrap();
        let mut arena = Arena::new();
        let first =
            conv2d_i8_prepacked(&x, in_q, &packed, None, out_q, &params, &mut arena).unwrap();
        prop_assert_eq!(&naive, &first);
        let again =
            conv2d_i8_prepacked(&x, in_q, &packed, None, out_q, &params, &mut arena).unwrap();
        prop_assert_eq!(&first, &again, "arena reuse changed results");
    }

    /// Exact register-tile shapes (m multiple of MR, n multiple of NR) and
    /// their ±1 neighbours all round-trip the packing bit-exactly.
    #[test]
    fn packed_i8_gemm_handles_tile_boundaries(
        mi in 1usize..=3,
        ni in 1usize..=3,
        dm in 0usize..=2, // 0: m % MR == 0, else tails
        dn in 0usize..=2,
        seed in 0u64..10_000,
    ) {
        let m = mi * MR + dm;
        let n = ni * NR + dn;
        let k = 17;
        let mut rng = DetRng::new(seed ^ 0x7E57);
        let a: Vec<i8> = (0..m * k).map(|_| rng.next_i8()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| rng.next_i8()).collect();
        let mut pa = vec![0i16; packed_a_len(m, k)];
        let mut pb = vec![0i16; packed_b_len(k, n)];
        pack_a_i8_into(&mut pa, &a, 1, m, k).unwrap();
        pack_b_i8_into(&mut pb, &b, -1, k, n).unwrap();
        let mut c = vec![0i32; m * n];
        gemm_i8_packed(m, k, n, &pa, &pb, &mut c).unwrap();
        let mut reference = vec![0i32; m * n];
        sushi_tensor::ops::gemm::gemm_i8_i32(m, k, n, &a, 1, &b, -1, &mut reference).unwrap();
        prop_assert_eq!(c, reference);
    }

    /// The k-pair (`pmaddwd`) kernel is bit-identical to the panel kernel —
    /// and hence to the scalar reference — across shapes (odd `k` exercises
    /// the zero-padded final pair), full zero-point range, and the
    /// AVX2-vs-portable split.
    #[test]
    fn pairs_i8_gemm_is_bit_identical_to_panel(
        m in 1usize..=13,
        k in 1usize..=40,
        n in 1usize..=21,
        zp_a in i8::MIN..=i8::MAX,
        zp_b in i8::MIN..=i8::MAX,
        seed in 0u64..10_000,
    ) {
        let mut rng = DetRng::new(seed ^ 0x5041);
        let a: Vec<i8> = (0..m * k).map(|_| rng.next_i8()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| rng.next_i8()).collect();
        let mut pa = vec![0i16; packed_a_len(m, k)];
        let mut pb = vec![0i16; packed_b_len(k, n)];
        pack_a_i8_into(&mut pa, &a, zp_a, m, k).unwrap();
        pack_b_i8_into(&mut pb, &b, zp_b, k, n).unwrap();
        let mut panel = vec![0i32; m * n];
        gemm_i8_packed(m, k, n, &pa, &pb, &mut panel).unwrap();
        let mut pap = vec![0i16; packed_a_pairs_len(m, k)];
        let mut pbp = vec![0i16; packed_b_pairs_len(k, n)];
        pack_a_i8_pairs_into(&mut pap, &a, zp_a, m, k).unwrap();
        pack_b_i8_pairs_into(&mut pbp, &b, zp_b, k, n).unwrap();
        let mut pairs = vec![0i32; m * n];
        gemm_i8_packed_pairs(m, k, n, &pap, &pbp, &mut pairs).unwrap();
        prop_assert_eq!(&panel, &pairs, "pairs kernel diverged on {}x{}x{}", m, k, n);
        let mut portable = vec![0i32; m * n];
        gemm_i8_packed_pairs_portable(m, k, n, &pap, &pbp, &mut portable).unwrap();
        prop_assert_eq!(&pairs, &portable, "pairs avx2 vs portable on {}x{}x{}", m, k, n);
    }

    /// The fully-connected layer's GEMM path matches its dot-product oracle.
    #[test]
    fn linear_gemm_matches_naive(
        batch in 1usize..=3,
        feat in 1usize..=32,
        out_features in 1usize..=8,
        seed in 0u64..10_000,
    ) {
        let shape = Shape4::new(batch, 1, 1, feat);
        let x = rand_f32(shape, seed);
        let mut rng = DetRng::new(seed + 9);
        let weights: Vec<f32> =
            (0..out_features * feat).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
        let naive =
            linear_f32_with(&x, &weights, None, out_features, KernelPolicy::Naive).unwrap();
        let gemm =
            linear_f32_with(&x, &weights, None, out_features, KernelPolicy::Im2colGemm).unwrap();
        for (ra, rb) in naive.iter().zip(&gemm) {
            for (a, b) in ra.iter().zip(rb) {
                prop_assert!((a - b).abs() <= 1e-4, "{a} vs {b}");
            }
        }
    }
}
