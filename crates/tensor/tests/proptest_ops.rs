//! Property-based tests for the tensor substrate: algebraic laws the
//! reference operators must satisfy for any input.

use proptest::prelude::*;

use sushi_tensor::ops::conv::{conv2d_f32, Conv2dParams};
use sushi_tensor::ops::pool::{avg_pool, max_pool, PoolParams};
use sushi_tensor::quant::{calibrate_symmetric, dequantize_tensor, quantize_tensor, QuantParams};
use sushi_tensor::{Shape4, Tensor};

#[allow(dead_code)]
fn tensor_strategy(shape: Shape4, range: f32) -> impl Strategy<Value = Tensor<f32>> {
    proptest::collection::vec(-range..range, shape.volume())
        .prop_map(move |v| Tensor::from_vec(shape, v).expect("len matches"))
}

fn small_conv_shapes() -> impl Strategy<Value = (Shape4, Shape4, Conv2dParams)> {
    (1usize..=4, 1usize..=6, 4usize..=8, prop_oneof![Just(1usize), Just(3usize)], 1usize..=2)
        .prop_map(|(c, k, hw, ks, stride)| {
            let input = Shape4::new(1, c, hw, hw);
            let weights = Shape4::new(k, c, ks, ks);
            let params = Conv2dParams::new(ks, ks).with_stride(stride).with_padding(ks / 2);
            (input, weights, params)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Convolution is linear in the input: conv(a + b) == conv(a) + conv(b).
    #[test]
    fn conv_is_linear_in_input(
        (ishape, wshape, params) in small_conv_shapes(),
        seed in 0u64..1000,
    ) {
        let mk = |s: u64, shape: Shape4| {
            let mut rng = sushi_tensor::DetRng::new(s);
            let v: Vec<f32> = (0..shape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
            Tensor::from_vec(shape, v).unwrap()
        };
        let a = mk(seed, ishape);
        let b = mk(seed + 1, ishape);
        let w = mk(seed + 2, wshape);
        let sum_in = Tensor::from_vec(
            ishape,
            a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| x + y).collect(),
        ).unwrap();
        let conv_sum = conv2d_f32(&sum_in, &w, None, &params).unwrap();
        let ca = conv2d_f32(&a, &w, None, &params).unwrap();
        let cb = conv2d_f32(&b, &w, None, &params).unwrap();
        let sum_conv = Tensor::from_vec(
            ca.shape(),
            ca.as_slice().iter().zip(cb.as_slice()).map(|(x, y)| x + y).collect(),
        ).unwrap();
        prop_assert!(conv_sum.max_abs_diff(&sum_conv).unwrap() < 1e-3);
    }

    /// Scaling the kernel scales the output.
    #[test]
    fn conv_is_homogeneous_in_weights(
        (ishape, wshape, params) in small_conv_shapes(),
        seed in 0u64..1000,
        alpha in 0.25f32..4.0,
    ) {
        let mk = |s: u64, shape: Shape4| {
            let mut rng = sushi_tensor::DetRng::new(s);
            let v: Vec<f32> = (0..shape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
            Tensor::from_vec(shape, v).unwrap()
        };
        let x = mk(seed, ishape);
        let w = mk(seed + 1, wshape);
        let w_scaled = w.map(|v| v * alpha);
        let base = conv2d_f32(&x, &w, None, &params).unwrap();
        let scaled = conv2d_f32(&x, &w_scaled, None, &params).unwrap();
        let expect = base.map(|v| v * alpha);
        prop_assert!(scaled.max_abs_diff(&expect).unwrap() < 1e-2);
    }

    /// Quantize -> dequantize error is bounded by half a step for in-range
    /// values under symmetric calibration.
    #[test]
    fn quantization_roundtrip_error_bounded(values in proptest::collection::vec(-10.0f32..10.0, 1..64)) {
        let n = values.len();
        let t = Tensor::from_vec(Shape4::new(1, 1, 1, n), values).unwrap();
        let q = calibrate_symmetric(&t);
        let rt = dequantize_tensor(&quantize_tensor(&t, q), q);
        prop_assert!(t.max_abs_diff(&rt).unwrap() <= q.scale / 2.0 + 1e-6);
    }

    /// Quantization is monotone: a <= b implies q(a) <= q(b).
    #[test]
    fn quantization_is_monotone(a in -20.0f32..20.0, b in -20.0f32..20.0, scale in 0.01f32..1.0, zp in -10i8..10) {
        let q = QuantParams::new(scale, zp);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize(lo) <= q.quantize(hi));
    }

    /// Max pooling never invents values: every output equals some input.
    #[test]
    fn max_pool_outputs_are_inputs(values in proptest::collection::vec(-5.0f32..5.0, 36)) {
        let t = Tensor::from_vec(Shape4::new(1, 1, 6, 6), values.clone()).unwrap();
        let out = max_pool(&t, &PoolParams::new(2)).unwrap();
        for &v in out.as_slice() {
            prop_assert!(values.iter().any(|&x| (x - v).abs() < 1e-6));
        }
    }

    /// Average pooling stays within the input's range.
    #[test]
    fn avg_pool_within_input_range(values in proptest::collection::vec(-5.0f32..5.0, 36)) {
        let t = Tensor::from_vec(Shape4::new(1, 1, 6, 6), values.clone()).unwrap();
        let out = avg_pool(&t, &PoolParams::new(3)).unwrap();
        let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for &v in out.as_slice() {
            prop_assert!(v >= lo - 1e-6 && v <= hi + 1e-6);
        }
    }

    /// Strided conv output dims match the closed-form formula.
    #[test]
    fn conv_output_shape_matches_formula((ishape, wshape, params) in small_conv_shapes()) {
        let x = Tensor::<f32>::zeros(ishape);
        let w = Tensor::<f32>::zeros(wshape);
        let out = conv2d_f32(&x, &w, None, &params).unwrap();
        let oh = sushi_tensor::shape::conv_out_dim(ishape.h, wshape.h, params.stride, params.padding).unwrap();
        prop_assert_eq!(out.shape(), Shape4::new(1, wshape.n, oh, oh));
    }
}
