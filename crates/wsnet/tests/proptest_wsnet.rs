//! Property-based tests for the WS-DNN substrate: the SubGraph lattice,
//! size accounting, materialization nesting and encodings.

use proptest::prelude::*;

use sushi_wsnet::layer::LayerSlice;
use sushi_wsnet::sampler::ConfigSampler;
use sushi_wsnet::{zoo, NetVector, SubGraph};

fn slice_strategy() -> impl Strategy<Value = LayerSlice> {
    (0usize..32, 0usize..32, prop_oneof![Just(0usize), Just(1usize), Just(3usize), Just(5usize)])
        .prop_map(|(k, c, ks)| LayerSlice::new(k, c, ks))
}

fn subgraph_strategy(layers: usize) -> impl Strategy<Value = SubGraph> {
    proptest::collection::vec(slice_strategy(), layers).prop_map(SubGraph::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Meet/join satisfy the lattice axioms.
    #[test]
    fn lattice_laws(a in subgraph_strategy(4), b in subgraph_strategy(4), c in subgraph_strategy(4)) {
        // Commutativity.
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.union(&b), b.union(&a));
        // Associativity.
        prop_assert_eq!(a.intersect(&b).intersect(&c), a.intersect(&b.intersect(&c)));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        // Absorption.
        prop_assert_eq!(a.union(&a.intersect(&b)), a.clone());
        prop_assert_eq!(a.intersect(&a.union(&b)), a.clone());
        // Idempotence.
        prop_assert_eq!(a.intersect(&a), a.clone());
    }

    /// Subset ordering is consistent with meet/join.
    #[test]
    fn subset_consistent_with_lattice(a in subgraph_strategy(4), b in subgraph_strategy(4)) {
        let i = a.intersect(&b);
        let u = a.union(&b);
        prop_assert!(i.is_subset_of(&a) && i.is_subset_of(&b));
        prop_assert!(a.is_subset_of(&u) && b.is_subset_of(&u));
        prop_assert!(i.is_subset_of(&u));
    }

    /// Weight bytes are monotone under the subset order (computed against
    /// the toy SuperNet, clamped to its maxima).
    #[test]
    fn weight_bytes_monotone(a in subgraph_strategy(16), b in subgraph_strategy(16)) {
        let net = zoo::toy_supernet();
        prop_assume!(net.num_layers() == 16);
        let clamp = |g: &SubGraph| {
            SubGraph::new(
                net.layers.iter().zip(g.slices()).map(|(l, s)| l.clamp_slice(*s)).collect(),
            )
        };
        let a = clamp(&a);
        let b = clamp(&b);
        let i = a.intersect(&b);
        prop_assert!(net.subgraph_weight_bytes(&i) <= net.subgraph_weight_bytes(&a));
        prop_assert!(net.subgraph_weight_bytes(&i) <= net.subgraph_weight_bytes(&b));
    }

    /// Intersection bytes are bounded by the smaller operand. Note the join
    /// has no such sum bound: slices are top-left *rectangles* of the
    /// kernel×channel grid, so the union of a tall and a wide slice is the
    /// smallest covering rectangle, which can exceed the operands' sum —
    /// the test pins the correct direction (union ≥ both operands).
    #[test]
    fn byte_inclusion_exclusion_bounds(a in subgraph_strategy(16), b in subgraph_strategy(16)) {
        let net = zoo::toy_supernet();
        let clamp = |g: &SubGraph| {
            SubGraph::new(
                net.layers.iter().zip(g.slices()).map(|(l, s)| l.clamp_slice(*s)).collect(),
            )
        };
        let a = clamp(&a);
        let b = clamp(&b);
        let ba = net.subgraph_weight_bytes(&a);
        let bb = net.subgraph_weight_bytes(&b);
        prop_assert!(net.subgraph_weight_bytes(&a.intersect(&b)) <= ba.min(bb));
        prop_assert!(net.subgraph_weight_bytes(&a.union(&b)) >= ba.max(bb));
    }

    /// Budget truncation produces a subset within budget (or the original
    /// if it already fits).
    #[test]
    fn budget_truncation_respects_budget(seed in 0u64..500, budget_kb in 1u64..64) {
        let net = zoo::toy_supernet();
        let sn = ConfigSampler::new(&net, seed).sample_subnets(1).pop().unwrap();
        let budget = budget_kb * 1024;
        let g = net.subgraph_to_budget(&sn.graph, budget);
        prop_assert!(g.is_subset_of(&sn.graph));
        prop_assert!(
            net.subgraph_weight_bytes(&g) <= budget.max(net.subgraph_weight_bytes(&sn.graph))
        );
        if net.subgraph_weight_bytes(&sn.graph) > budget {
            prop_assert!(net.subgraph_weight_bytes(&g) <= budget);
        }
    }

    /// Dominated configurations materialize to nested SubGraphs, and
    /// accuracy/FLOPs are monotone along the order (the OFA property §2.1).
    /// The dominated config is derived from the sampled one by shrinking
    /// each elastic dimension independently.
    #[test]
    fn dominated_configs_nest(
        seed_b in 0u64..200,
        shrink_d in proptest::collection::vec(0usize..3, 5),
        shrink_e in proptest::collection::vec(0usize..3, 5),
        shrink_k in proptest::collection::vec(0usize..3, 5),
    ) {
        let net = zoo::mobilenet_v3_supernet();
        let b = ConfigSampler::new(&net, seed_b).sample_config();
        let lower = |choices: &[f64], v: f64, steps: usize| -> f64 {
            let mut sorted = choices.to_vec();
            sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
            let pos = sorted.iter().position(|&c| c >= v).unwrap_or(0);
            sorted[pos.saturating_sub(steps)]
        };
        let mut a = b.clone();
        for s in 0..a.depths.len() {
            let dmin = *net.elastic.depth_choices.iter().min().unwrap();
            a.depths[s] = a.depths[s].saturating_sub(shrink_d[s]).max(dmin);
            a.expands[s] = lower(&net.elastic.expand_choices, a.expands[s], shrink_e[s]);
            if !a.kernels.is_empty() {
                let kmin = *net.elastic.kernel_choices.iter().min().unwrap();
                a.kernels[s] = a.kernels[s].saturating_sub(2 * shrink_k[s]).max(kmin);
            }
        }
        prop_assume!(a.dominated_by(&b));
        let sa = net.materialize("a", &a).unwrap();
        let sb = net.materialize("b", &b).unwrap();
        prop_assert!(sa.graph.is_subset_of(&sb.graph));
        prop_assert!(sa.flops <= sb.flops);
        prop_assert!(sa.accuracy <= sb.accuracy);
        prop_assert!(sa.weight_bytes <= sb.weight_bytes);
    }

    /// Every sampled SubNet lives inside the SuperNet and its byte count
    /// matches an independent recomputation.
    #[test]
    fn sampled_subnets_account_correctly(seed in 0u64..300) {
        let net = zoo::toy_mobilenet_supernet();
        let sn = ConfigSampler::new(&net, seed).sample_subnets(1).pop().unwrap();
        prop_assert!(sn.graph.is_subset_of(&net.full_graph()));
        let manual: u64 = net
            .layers
            .iter()
            .zip(sn.graph.slices())
            .map(|(l, s)| l.weight_bytes(s))
            .sum();
        prop_assert_eq!(manual, sn.weight_bytes);
        prop_assert_eq!(net.subgraph_flops(&sn.graph), sn.flops);
    }

    /// L2 distance satisfies the triangle inequality and identity laws on
    /// encoded SubGraphs.
    #[test]
    fn encoding_distance_is_a_metric(
        a in subgraph_strategy(4),
        b in subgraph_strategy(4),
        c in subgraph_strategy(4),
    ) {
        let (va, vb, vc) = (NetVector::encode(&a), NetVector::encode(&b), NetVector::encode(&c));
        prop_assert!(va.dist_l2(&va) == 0.0);
        prop_assert!((va.dist_l2(&vb) - vb.dist_l2(&va)).abs() < 1e-9);
        prop_assert!(va.dist_l2(&vc) <= va.dist_l2(&vb) + vb.dist_l2(&vc) + 1e-9);
    }

    /// The overlap ratio is in [0, 1], equals 1 for a superset cache, and is
    /// monotone in the cache.
    #[test]
    fn overlap_ratio_properties(sn in subgraph_strategy(4), g1 in subgraph_strategy(4), g2 in subgraph_strategy(4)) {
        use sushi_wsnet::encoding::overlap_ratio;
        prop_assume!(!sn.is_empty());
        let r1 = overlap_ratio(&sn, &g1);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r1));
        prop_assert!((overlap_ratio(&sn, &sn.union(&g1)) - 1.0).abs() < 1e-9);
        // Growing the cache never reduces overlap.
        let grown = g1.union(&g2);
        prop_assert!(overlap_ratio(&sn, &grown) >= r1 - 1e-9);
    }
}
