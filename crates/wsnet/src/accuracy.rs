//! Calibrated synthetic accuracy profile.
//!
//! The paper's SubNets carry ImageNet top-1 accuracies in the 75–80% band
//! (Figs. 10, 15, 16). Since serving decisions only consume accuracy as a
//! per-SubNet scalar, the reproduction replaces trained-model evaluation
//! with a *monotone, concave* profile of forward-pass FLOPs:
//!
//! ```text
//! acc(f) = a_min + (a_max − a_min) · (1 − e^{−κ·x}) / (1 − e^{−κ}),
//! x = (f − f_min) / (f_max − f_min)  clamped to [0, 1]
//! ```
//!
//! which maps the smallest SubNet to `a_min`, the largest to `a_max`, and
//! exhibits the diminishing returns characteristic of OFA Pareto fronts.
//! This substitution is documented in `DESIGN.md`.

use serde::{Deserialize, Serialize};

/// Monotone accuracy-vs-FLOPs profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyModel {
    /// Accuracy of the smallest SubNet, in `[0, 1]`.
    pub a_min: f64,
    /// Accuracy of the largest SubNet, in `[0, 1]`.
    pub a_max: f64,
    /// FLOPs of the smallest SubNet.
    pub f_min: u64,
    /// FLOPs of the largest SubNet.
    pub f_max: u64,
    /// Curvature `κ > 0`; larger = faster saturation.
    pub curvature: f64,
}

impl AccuracyModel {
    /// Creates a profile.
    ///
    /// # Panics
    /// Panics if the accuracy band or FLOP range is inverted, or `curvature`
    /// is not positive.
    #[must_use]
    pub fn new(a_min: f64, a_max: f64, f_min: u64, f_max: u64, curvature: f64) -> Self {
        assert!(a_min <= a_max, "accuracy band inverted");
        assert!(f_min <= f_max, "flop range inverted");
        assert!(curvature > 0.0, "curvature must be positive");
        Self { a_min, a_max, f_min, f_max, curvature }
    }

    /// A placeholder profile for skeleton construction (identity band).
    #[must_use]
    pub fn uncalibrated() -> Self {
        Self { a_min: 0.0, a_max: 0.0, f_min: 0, f_max: 1, curvature: 3.0 }
    }

    /// Accuracy for a SubNet with the given forward FLOPs.
    #[must_use]
    pub fn accuracy_for_flops(&self, flops: u64) -> f64 {
        if self.f_max <= self.f_min {
            return self.a_max;
        }
        let x = ((flops.saturating_sub(self.f_min)) as f64 / (self.f_max - self.f_min) as f64)
            .clamp(0.0, 1.0);
        let k = self.curvature;
        let shaped = (1.0 - (-k * x).exp()) / (1.0 - (-k).exp());
        self.a_min + (self.a_max - self.a_min) * shaped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AccuracyModel {
        AccuracyModel::new(0.752, 0.803, 1_000_000, 9_000_000, 3.0)
    }

    #[test]
    fn endpoints_map_to_band_edges() {
        let m = model();
        assert!((m.accuracy_for_flops(1_000_000) - 0.752).abs() < 1e-12);
        assert!((m.accuracy_for_flops(9_000_000) - 0.803).abs() < 1e-12);
    }

    #[test]
    fn clamps_outside_range() {
        let m = model();
        assert_eq!(m.accuracy_for_flops(0), 0.752);
        assert_eq!(m.accuracy_for_flops(u64::MAX), 0.803);
    }

    #[test]
    fn is_monotone_nondecreasing() {
        let m = model();
        let mut prev = 0.0;
        for f in (1_000_000..=9_000_000).step_by(250_000) {
            let a = m.accuracy_for_flops(f);
            assert!(a >= prev, "not monotone at {f}");
            prev = a;
        }
    }

    #[test]
    fn is_concave_diminishing_returns() {
        let m = model();
        // First half of the FLOP range must buy more accuracy than the second.
        let mid = m.accuracy_for_flops(5_000_000);
        let first_half_gain = mid - m.accuracy_for_flops(1_000_000);
        let second_half_gain = m.accuracy_for_flops(9_000_000) - mid;
        assert!(first_half_gain > second_half_gain);
    }

    #[test]
    fn degenerate_range_returns_a_max() {
        let m = AccuracyModel::new(0.7, 0.8, 5, 5, 3.0);
        assert_eq!(m.accuracy_for_flops(5), 0.8);
    }

    #[test]
    #[should_panic(expected = "accuracy band inverted")]
    fn rejects_inverted_band() {
        let _ = AccuracyModel::new(0.9, 0.8, 0, 1, 3.0);
    }
}
