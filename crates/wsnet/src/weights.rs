//! Deterministic synthetic SuperNet weight storage.
//!
//! The SuperNet stores one int8 tensor per layer at *maximal* dimensions;
//! every SubNet/SubGraph is a view into it (the whole point of weight
//! sharing: "it obviates the need to store these model variants
//! separately"). Weights are synthesized deterministically from a seed so
//! every experiment is reproducible; real OFA checkpoints are substituted
//! per `DESIGN.md` since serving behaviour does not depend on weight values.

use serde::{Deserialize, Serialize};
use sushi_tensor::{DetRng, QuantParams, Shape4, Tensor};

use crate::arch::SuperNet;
use crate::layer::{ConvKind, LayerSlice};
use crate::subgraph::SubGraph;

/// Weights, quantization parameters and biases of one SuperNet layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWeights {
    /// Int8 kernel tensor `(K_max, C_max, R_max, S_max)` (depthwise: `C = 1`).
    pub kernels: Tensor<i8>,
    /// Weight quantization parameters.
    pub w_q: QuantParams,
    /// Per-kernel int32 bias.
    pub bias: Vec<i32>,
}

/// All layer weights of a SuperNet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightStore {
    layers: Vec<LayerWeights>,
}

impl WeightStore {
    /// Synthesizes deterministic weights for every layer of `net`.
    #[must_use]
    pub fn synthesize(net: &SuperNet, seed: u64) -> Self {
        let mut root = DetRng::new(seed);
        let layers = net
            .layers
            .iter()
            .map(|layer| {
                let mut rng = root.fork(layer.id.0 as u64);
                let c = match layer.kind {
                    ConvKind::Dense => layer.max_channels,
                    ConvKind::Depthwise => 1,
                };
                let shape =
                    Shape4::new(layer.max_kernels, c, layer.max_kernel_size, layer.max_kernel_size);
                let data: Vec<i8> = (0..shape.volume()).map(|_| rng.next_i8()).collect();
                let kernels = Tensor::from_vec(shape, data).expect("shape/volume consistent");
                // Fan-in-aware scale (He-style) so activations keep roughly
                // unit variance through the network instead of saturating.
                let fan_in = (c * layer.max_kernel_size * layer.max_kernel_size) as f32;
                let w_q = QuantParams::new((0.02 / fan_in.sqrt()).max(1e-6), 0);
                let bias =
                    (0..layer.max_kernels).map(|_| (rng.next_u64() % 512) as i32 - 256).collect();
                LayerWeights { kernels, w_q, bias }
            })
            .collect();
        Self { layers }
    }

    /// Number of layers.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Weights of one layer.
    ///
    /// # Panics
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn layer(&self, layer: usize) -> &LayerWeights {
        &self.layers[layer]
    }

    /// Extracts the active weight slice of a layer as a standalone tensor:
    /// top-`kernels` × top-`channels` × *center* `kernel_size` window
    /// (OFA center-crop semantics for elastic kernels).
    ///
    /// Returns `None` for an empty slice.
    ///
    /// # Panics
    /// Panics if `layer` is out of range or the slice exceeds stored maxima.
    #[must_use]
    pub fn slice_tensor(&self, layer: usize, slice: &LayerSlice) -> Option<Tensor<i8>> {
        if slice.is_empty() {
            return None;
        }
        let lw = &self.layers[layer];
        let full = lw.kernels.shape();
        let c = slice.channels.min(full.c); // depthwise slices carry c=1 already
        assert!(slice.kernels <= full.n, "slice kernels exceed layer maximum");
        assert!(slice.kernel_size <= full.h, "slice kernel size exceeds layer maximum");
        let crop = (full.h - slice.kernel_size) / 2;
        let shape = Shape4::new(slice.kernels, c, slice.kernel_size, slice.kernel_size);
        let mut out = Tensor::zeros(shape);
        for k in 0..slice.kernels {
            for ch in 0..c {
                for y in 0..slice.kernel_size {
                    for x in 0..slice.kernel_size {
                        out.set(k, ch, y, x, lw.kernels.get(k, ch, y + crop, x + crop));
                    }
                }
            }
        }
        Some(out)
    }

    /// Bias slice for the active kernels of a layer.
    ///
    /// # Panics
    /// Panics if `layer` is out of range or the slice exceeds stored maxima.
    #[must_use]
    pub fn bias_slice(&self, layer: usize, slice: &LayerSlice) -> &[i32] {
        &self.layers[layer].bias[..slice.kernels]
    }

    /// Total stored bytes (kernel tensors only).
    #[must_use]
    pub fn stored_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.kernels.len() as u64).sum()
    }

    /// Mutable access to a layer's kernel tensor, for tests that perturb
    /// weights to verify sharing semantics. Not part of the public contract.
    #[doc(hidden)]
    pub fn layer_mut_for_tests(&mut self, layer: usize) -> &mut Tensor<i8> {
        &mut self.layers[layer].kernels
    }

    /// Checks that a SubGraph fits within the stored maxima.
    #[must_use]
    pub fn admits(&self, graph: &SubGraph) -> bool {
        graph.num_layers() == self.layers.len()
            && graph.slices().iter().zip(&self.layers).all(|(s, lw)| {
                s.is_empty()
                    || (s.kernels <= lw.kernels.shape().n && s.kernel_size <= lw.kernels.shape().h)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn synthesis_is_deterministic() {
        let net = zoo::toy_supernet();
        let a = WeightStore::synthesize(&net, 42);
        let b = WeightStore::synthesize(&net, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_weights() {
        let net = zoo::toy_supernet();
        let a = WeightStore::synthesize(&net, 1);
        let b = WeightStore::synthesize(&net, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn store_covers_every_layer_at_max_dims() {
        let net = zoo::toy_supernet();
        let ws = WeightStore::synthesize(&net, 7);
        assert_eq!(ws.num_layers(), net.num_layers());
        for (i, layer) in net.layers.iter().enumerate() {
            let shape = ws.layer(i).kernels.shape();
            assert_eq!(shape.n, layer.max_kernels, "layer {}", layer.name);
            assert_eq!(shape.h, layer.max_kernel_size);
        }
    }

    #[test]
    fn slice_tensor_takes_top_left_corner_of_k_c() {
        let net = zoo::toy_supernet();
        let ws = WeightStore::synthesize(&net, 7);
        let layer = 1; // a stage conv with nontrivial dims
        let full = net.layers[layer].max_slice();
        let half = LayerSlice::new(
            (full.kernels / 2).max(1),
            (full.channels / 2).max(1),
            full.kernel_size,
        );
        let t = ws.slice_tensor(layer, &half).unwrap();
        assert_eq!(t.shape().n, half.kernels);
        // Shared prefix property: slice values match the full tensor's top corner.
        let full_t = ws.slice_tensor(layer, &full).unwrap();
        assert_eq!(t.get(0, 0, 0, 0), full_t.get(0, 0, 0, 0));
    }

    #[test]
    fn slice_tensor_center_crops_kernel_window() {
        let net = zoo::toy_mobilenet_supernet();
        let ws = WeightStore::synthesize(&net, 3);
        // Find a depthwise layer with 5x5 max kernel.
        let (idx, layer) = net
            .layers
            .iter()
            .enumerate()
            .find(|(_, l)| l.kind == ConvKind::Depthwise && l.max_kernel_size == 5)
            .expect("toy mobilenet has a 5x5 depthwise layer");
        let full = ws.slice_tensor(idx, &layer.max_slice()).unwrap();
        let s3 = LayerSlice::new(8, 1, 3);
        let cropped = ws.slice_tensor(idx, &s3).unwrap();
        // Center crop of a 5x5 window starts at offset 1.
        assert_eq!(cropped.get(0, 0, 0, 0), full.get(0, 0, 1, 1));
        assert_eq!(cropped.get(0, 0, 2, 2), full.get(0, 0, 3, 3));
    }

    #[test]
    fn empty_slice_yields_none() {
        let net = zoo::toy_supernet();
        let ws = WeightStore::synthesize(&net, 7);
        assert!(ws.slice_tensor(0, &LayerSlice::empty()).is_none());
    }

    #[test]
    fn admits_full_graph_and_rejects_oversized() {
        let net = zoo::toy_supernet();
        let ws = WeightStore::synthesize(&net, 7);
        assert!(ws.admits(&net.full_graph()));
        let mut big = net.full_graph();
        big.slice_mut(0).kernels += 1;
        assert!(!ws.admits(&big));
    }

    #[test]
    fn bias_slice_length_matches_kernels() {
        let net = zoo::toy_supernet();
        let ws = WeightStore::synthesize(&net, 7);
        let s = LayerSlice::new(4, 3, 3);
        assert_eq!(ws.bias_slice(0, &s).len(), 4);
    }
}
