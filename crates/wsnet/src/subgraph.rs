//! SubGraphs: arbitrary weight subsets of a SuperNet, closed under
//! intersection and union.
//!
//! The paper distinguishes **SubNets** (subsets of the SuperNet usable for a
//! forward pass) from **SubGraphs** (any connected subset of weights — e.g.
//! the intersection of two SubNets, or a SubNet truncated to the Persistent
//! Buffer size). Every SubNet is a SubGraph; not vice versa.
//!
//! A SubGraph is represented as one [`LayerSlice`] per SuperNet layer, using
//! OFA's ordered-importance convention: an active slice is always the top-K
//! kernels × top-C channels × center kernel window, so slices (and therefore
//! SubGraphs) form a lattice where meet/join are elementwise min/max.

use serde::{Deserialize, Serialize};

use crate::layer::LayerSlice;

/// A subset of SuperNet weights: one slice per layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubGraph {
    slices: Vec<LayerSlice>,
}

impl SubGraph {
    /// Creates a SubGraph from per-layer slices.
    #[must_use]
    pub fn new(slices: Vec<LayerSlice>) -> Self {
        Self { slices }
    }

    /// A SubGraph with every layer inactive.
    #[must_use]
    pub fn empty(num_layers: usize) -> Self {
        Self { slices: vec![LayerSlice::empty(); num_layers] }
    }

    /// Number of layers (active or not).
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.slices.len()
    }

    /// Per-layer slices.
    #[must_use]
    pub fn slices(&self) -> &[LayerSlice] {
        &self.slices
    }

    /// Slice at a layer index.
    ///
    /// # Panics
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn slice(&self, layer: usize) -> LayerSlice {
        self.slices[layer]
    }

    /// Mutable slice accessor.
    ///
    /// # Panics
    /// Panics if `layer` is out of range.
    pub fn slice_mut(&mut self, layer: usize) -> &mut LayerSlice {
        &mut self.slices[layer]
    }

    /// Number of layers with a non-empty slice.
    #[must_use]
    pub fn active_layers(&self) -> usize {
        self.slices.iter().filter(|s| !s.is_empty()).count()
    }

    /// Whether no layer is active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slices.iter().all(LayerSlice::is_empty)
    }

    /// Lattice meet: the weights shared by both SubGraphs.
    ///
    /// This is the paper's *SubGraph Reuse* object — "common shared weights
    /// form a SubGraph (e.g. created as the intersection of computational
    /// graphs of any two served SubNets)".
    ///
    /// # Panics
    /// Panics if the SubGraphs have different layer counts.
    #[must_use]
    pub fn intersect(&self, other: &Self) -> Self {
        assert_eq!(self.slices.len(), other.slices.len(), "SubGraphs from different SuperNets");
        Self {
            slices: self.slices.iter().zip(&other.slices).map(|(a, b)| a.intersect(b)).collect(),
        }
    }

    /// Lattice join: the smallest SubGraph containing both.
    ///
    /// # Panics
    /// Panics if the SubGraphs have different layer counts.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        assert_eq!(self.slices.len(), other.slices.len(), "SubGraphs from different SuperNets");
        Self { slices: self.slices.iter().zip(&other.slices).map(|(a, b)| a.union(b)).collect() }
    }

    /// Whether every weight of `self` is also in `other`.
    ///
    /// # Panics
    /// Panics if the SubGraphs have different layer counts.
    #[must_use]
    pub fn is_subset_of(&self, other: &Self) -> bool {
        assert_eq!(self.slices.len(), other.slices.len(), "SubGraphs from different SuperNets");
        self.slices.iter().zip(&other.slices).all(|(a, b)| a.is_subset_of(b))
    }

    /// Uniformly scales active kernel/channel counts by `alpha ∈ [0, 1]`,
    /// keeping kernel sizes. Used to truncate a SubNet's graph down to a
    /// cache-sized SubGraph (candidate-set construction, §3.2).
    #[must_use]
    pub fn scaled(&self, alpha: f64) -> Self {
        let alphas = vec![alpha; self.slices.len()];
        self.scaled_per_layer(&alphas)
    }

    /// Scales each layer's active kernel/channel counts by its own factor
    /// (clamped to `[0, 1]`). Enables *shape-diverse* cache candidates: a
    /// front-heavy and a back-heavy truncation of the same SubNet are
    /// different SubGraphs with different serving affinities (Fig. 3).
    ///
    /// # Panics
    /// Panics if `alphas.len() != self.num_layers()`.
    #[must_use]
    pub fn scaled_per_layer(&self, alphas: &[f64]) -> Self {
        assert_eq!(alphas.len(), self.slices.len(), "one alpha per layer");
        Self {
            slices: self
                .slices
                .iter()
                .zip(alphas)
                .map(|(s, &alpha)| {
                    let alpha = alpha.clamp(0.0, 1.0);
                    if s.is_empty() {
                        *s
                    } else {
                        LayerSlice {
                            kernels: scale_dim(s.kernels, alpha),
                            channels: scale_dim(s.channels, alpha),
                            kernel_size: s.kernel_size,
                        }
                    }
                })
                .collect(),
        }
    }
}

/// Scales a dimension, keeping at least 1 active unit when `alpha > 0`.
fn scale_dim(dim: usize, alpha: f64) -> usize {
    if alpha <= 0.0 {
        return 0;
    }
    ((dim as f64 * alpha).round() as usize).clamp(1, dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sg(dims: &[(usize, usize, usize)]) -> SubGraph {
        SubGraph::new(dims.iter().map(|&(k, c, ks)| LayerSlice::new(k, c, ks)).collect())
    }

    #[test]
    fn empty_has_no_active_layers() {
        let g = SubGraph::empty(5);
        assert_eq!(g.num_layers(), 5);
        assert_eq!(g.active_layers(), 0);
        assert!(g.is_empty());
    }

    #[test]
    fn intersect_commutes() {
        let a = sg(&[(8, 4, 3), (16, 8, 3)]);
        let b = sg(&[(4, 8, 3), (16, 4, 3)]);
        assert_eq!(a.intersect(&b), b.intersect(&a));
    }

    #[test]
    fn intersect_is_idempotent() {
        let a = sg(&[(8, 4, 3), (16, 8, 5)]);
        assert_eq!(a.intersect(&a), a);
    }

    #[test]
    fn intersection_is_subset_of_both() {
        let a = sg(&[(8, 4, 3), (16, 8, 7)]);
        let b = sg(&[(4, 8, 3), (16, 4, 5)]);
        let i = a.intersect(&b);
        assert!(i.is_subset_of(&a));
        assert!(i.is_subset_of(&b));
    }

    #[test]
    fn union_contains_both() {
        let a = sg(&[(8, 4, 3), (16, 8, 7)]);
        let b = sg(&[(4, 8, 3), (16, 4, 5)]);
        let u = a.union(&b);
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
    }

    #[test]
    fn absorption_laws_hold() {
        let a = sg(&[(8, 4, 3), (16, 8, 7)]);
        let b = sg(&[(4, 8, 3), (16, 4, 5)]);
        assert_eq!(a.union(&a.intersect(&b)), a);
        assert_eq!(a.intersect(&a.union(&b)), a);
    }

    #[test]
    fn subset_is_antisymmetric() {
        let a = sg(&[(8, 4, 3)]);
        let b = sg(&[(8, 4, 3)]);
        assert!(a.is_subset_of(&b) && b.is_subset_of(&a));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "different SuperNets")]
    fn intersect_rejects_mismatched_layer_counts() {
        let a = SubGraph::empty(2);
        let b = SubGraph::empty(3);
        let _ = a.intersect(&b);
    }

    #[test]
    fn scaled_one_is_identity() {
        let a = sg(&[(8, 4, 3), (16, 8, 5)]);
        assert_eq!(a.scaled(1.0), a);
    }

    #[test]
    fn scaled_result_is_subset() {
        let a = sg(&[(8, 4, 3), (16, 8, 5), (100, 60, 7)]);
        for alpha in [0.1, 0.3, 0.5, 0.9] {
            assert!(a.scaled(alpha).is_subset_of(&a), "alpha={alpha}");
        }
    }

    #[test]
    fn scaled_keeps_at_least_one_unit() {
        let a = sg(&[(8, 4, 3)]);
        let s = a.scaled(0.01);
        assert_eq!(s.slice(0).kernels, 1);
        assert_eq!(s.slice(0).channels, 1);
    }

    #[test]
    fn scaled_zero_empties_active_layers() {
        let a = sg(&[(8, 4, 3)]);
        assert!(a.scaled(0.0).is_empty());
    }

    #[test]
    fn scaled_preserves_inactive_layers() {
        let mut a = sg(&[(8, 4, 3), (0, 0, 0)]);
        a = a.scaled(0.5);
        assert!(a.slice(1).is_empty());
    }
}
