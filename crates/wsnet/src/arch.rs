//! SuperNet architecture: stages, elastic dimensions, and SubNet
//! materialization.
//!
//! A [`SuperNet`] is the weight-shared construct of §2.1: a collection of
//! stages of repeated blocks whose depth, width (expand ratio), kernel size
//! and global channel width are *elastic*. Materializing a
//! [`SubNetConfig`] selects the top-`d` blocks per stage and the top slice
//! of each layer's kernels/channels, yielding a [`SubNet`] whose weights are
//! nested inside the SuperNet (and inside every larger SubNet).

use serde::{Deserialize, Serialize};

use crate::accuracy::AccuracyModel;
use crate::layer::{ConvKind, ConvLayerDesc, LayerRole, LayerSlice};
use crate::subgraph::SubGraph;
use crate::subnet::{SubNet, SubNetConfig};

/// Marker for stem/head layers that belong to no stage.
pub const NO_STAGE: usize = usize::MAX;

/// The two OFA SuperNet families evaluated in the paper (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// OFA-ResNet50: bottleneck blocks, elastic depth/expand/width.
    OfaResNet50,
    /// OFA-MobileNetV3: MBConv blocks with SE, elastic depth/expand/kernel.
    OfaMobileNetV3,
}

/// Static description of one stage of repeated blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Maximum number of blocks (elastic depth upper bound).
    pub max_blocks: usize,
    /// Base output channels at width multiplier 1.0.
    pub base_out: usize,
    /// Stride of the first block.
    pub stride: usize,
    /// Whether blocks carry a squeeze-and-excite module (MobileNetV3).
    pub se: bool,
    /// Default (and maximal) spatial kernel size of the block's main conv.
    pub default_kernel: usize,
}

/// The elastic choice sets of a SuperNet (uniform across stages).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticSpace {
    /// Allowed per-stage depths.
    pub depth_choices: Vec<usize>,
    /// Allowed per-stage expand ratios.
    pub expand_choices: Vec<f64>,
    /// Allowed per-stage kernel sizes (empty if kernels are fixed).
    pub kernel_choices: Vec<usize>,
    /// Allowed global width multipliers.
    pub width_choices: Vec<f64>,
}

impl ElasticSpace {
    /// Number of distinct SubNet configurations this space spans.
    #[must_use]
    pub fn cardinality(&self, num_stages: usize) -> u128 {
        let per_stage = (self.depth_choices.len() * self.expand_choices.len()) as u128
            * self.kernel_choices.len().max(1) as u128;
        per_stage.pow(num_stages as u32) * self.width_choices.len().max(1) as u128
    }
}

/// A weight-shared SuperNet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuperNet {
    /// Display name, e.g. `"OFA-ResNet50"`.
    pub name: String,
    /// Architecture family (drives materialization rules).
    pub family: Family,
    /// Input image height/width.
    pub input_hw: usize,
    /// Stem base output channels at width 1.0.
    pub stem_base: usize,
    /// Head layer widths: `[classes]` for ResNet-style heads,
    /// `[final_expand, fc1, classes]` for MobileNetV3-style heads.
    pub head_channels: Vec<usize>,
    /// Stage descriptions.
    pub stages: Vec<StageSpec>,
    /// Flattened layer descriptors at maximal dimensions.
    pub layers: Vec<ConvLayerDesc>,
    /// Elastic choice sets.
    pub elastic: ElasticSpace,
    /// Calibrated accuracy profile.
    pub accuracy: AccuracyModel,
}

/// Rounds channels to the hardware-friendly multiple of 8 used by OFA's
/// `make_divisible`, never below 8.
#[must_use]
pub fn round_channels(x: f64) -> usize {
    let r = ((x / 8.0).round() as usize) * 8;
    r.max(8)
}

impl SuperNet {
    /// The largest SubNet configuration (every elastic dim at max).
    #[must_use]
    pub fn max_config(&self) -> SubNetConfig {
        let s = self.stages.len();
        let mut c = SubNetConfig::new(
            vec![*self.elastic.depth_choices.iter().max().expect("non-empty depths"); s],
            vec![max_f(&self.elastic.expand_choices); s],
        )
        .with_width(max_f(&self.elastic.width_choices));
        if !self.elastic.kernel_choices.is_empty() {
            c = c.with_kernels(vec![*self.elastic.kernel_choices.iter().max().unwrap(); s]);
        }
        c
    }

    /// The smallest SubNet configuration (every elastic dim at min).
    #[must_use]
    pub fn min_config(&self) -> SubNetConfig {
        let s = self.stages.len();
        let mut c = SubNetConfig::new(
            vec![*self.elastic.depth_choices.iter().min().expect("non-empty depths"); s],
            vec![min_f(&self.elastic.expand_choices); s],
        )
        .with_width(min_f(&self.elastic.width_choices));
        if !self.elastic.kernel_choices.is_empty() {
            c = c.with_kernels(vec![*self.elastic.kernel_choices.iter().min().unwrap(); s]);
        }
        c
    }

    /// Validates that a config is well-formed for this SuperNet.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate_config(&self, config: &SubNetConfig) -> Result<(), String> {
        if config.depths.len() != self.stages.len() {
            return Err(format!(
                "config has {} stage depths, SuperNet has {} stages",
                config.depths.len(),
                self.stages.len()
            ));
        }
        if config.expands.len() != self.stages.len() {
            return Err(format!(
                "config has {} expand ratios, SuperNet has {} stages",
                config.expands.len(),
                self.stages.len()
            ));
        }
        for (s, (&d, spec)) in config.depths.iter().zip(&self.stages).enumerate() {
            if d == 0 || d > spec.max_blocks {
                return Err(format!("stage {s} depth {d} outside [1, {}]", spec.max_blocks));
            }
        }
        if config.width_mult <= 0.0 {
            return Err("width multiplier must be positive".into());
        }
        for (s, &e) in config.expands.iter().enumerate() {
            if e <= 0.0 {
                return Err(format!("stage {s} expand ratio must be positive"));
            }
        }
        if !config.kernels.is_empty() {
            for (s, &k) in config.kernels.iter().enumerate() {
                let maxk = self.stages[s].default_kernel;
                if k == 0 || k > maxk || k % 2 == 0 {
                    return Err(format!("stage {s} kernel {k} invalid (odd, ≤ {maxk})"));
                }
            }
        }
        Ok(())
    }

    /// Materializes a configuration into a [`SubNet`].
    ///
    /// # Errors
    /// Returns an error when the config fails [`Self::validate_config`].
    pub fn materialize(
        &self,
        name: impl Into<String>,
        config: &SubNetConfig,
    ) -> Result<SubNet, String> {
        self.validate_config(config)?;
        let slices: Vec<LayerSlice> =
            self.layers.iter().map(|layer| self.active_slice(layer, config)).collect();
        let graph = SubGraph::new(slices);
        let flops = self.subgraph_flops(&graph);
        let weight_bytes = self.subgraph_weight_bytes(&graph);
        let accuracy = self.accuracy.accuracy_for_flops(flops);
        Ok(SubNet {
            name: name.into(),
            config: config.clone(),
            graph,
            accuracy,
            flops,
            weight_bytes,
        })
    }

    /// Computes the active slice of one layer under a config.
    fn active_slice(&self, layer: &ConvLayerDesc, config: &SubNetConfig) -> LayerSlice {
        let w = config.width_mult;
        // Stage-less layers: stem and head.
        if layer.stage == NO_STAGE {
            return layer.clamp_slice(self.stem_or_head_slice(layer, config));
        }
        let s = layer.stage;
        let b = layer.block;
        if b >= config.depths[s] {
            return LayerSlice::empty(); // block dropped by elastic depth
        }
        let e = config.expands[s];
        let spec = &self.stages[s];
        let out = round_channels(spec.base_out as f64 * w);
        let in_ch = self.block_in_channels(s, b, w);
        let slice = match (self.family, layer.role) {
            (Family::OfaResNet50, LayerRole::Expand) => {
                LayerSlice::new(round_channels(spec.base_out as f64 * w * e), in_ch, 1)
            }
            (Family::OfaResNet50, LayerRole::Spatial) => {
                let mid = round_channels(spec.base_out as f64 * w * e);
                LayerSlice::new(mid, mid, spec.default_kernel)
            }
            (Family::OfaResNet50, LayerRole::Project) => {
                LayerSlice::new(out, round_channels(spec.base_out as f64 * w * e), 1)
            }
            (Family::OfaResNet50, LayerRole::Downsample) => LayerSlice::new(out, in_ch, 1),
            (Family::OfaMobileNetV3, LayerRole::Expand) => {
                LayerSlice::new(round_channels(in_ch as f64 * e), in_ch, 1)
            }
            (Family::OfaMobileNetV3, LayerRole::Spatial) => {
                let mid = round_channels(in_ch as f64 * e);
                LayerSlice::new(mid, 1, config.kernel_for_stage(s, spec.default_kernel))
            }
            (Family::OfaMobileNetV3, LayerRole::SeReduce) => {
                let mid = round_channels(in_ch as f64 * e);
                LayerSlice::new(round_channels(mid as f64 / 4.0), mid, 1)
            }
            (Family::OfaMobileNetV3, LayerRole::SeExpand) => {
                let mid = round_channels(in_ch as f64 * e);
                LayerSlice::new(mid, round_channels(mid as f64 / 4.0), 1)
            }
            (Family::OfaMobileNetV3, LayerRole::Project) => {
                LayerSlice::new(out, round_channels(in_ch as f64 * e), 1)
            }
            (family, role) => {
                unreachable!("role {role:?} not valid for family {family:?}")
            }
        };
        layer.clamp_slice(slice)
    }

    /// Active dims of stem and head layers (identified by block index for
    /// multi-layer heads).
    fn stem_or_head_slice(&self, layer: &ConvLayerDesc, config: &SubNetConfig) -> LayerSlice {
        let w = config.width_mult;
        let last_out =
            round_channels(self.stages.last().expect("at least one stage").base_out as f64 * w);
        match (self.family, layer.role, layer.block) {
            (_, LayerRole::Stem, _) => {
                LayerSlice::new(round_channels(self.stem_base as f64 * w), 3, layer.max_kernel_size)
            }
            (Family::OfaResNet50, LayerRole::Head, _) => {
                LayerSlice::new(self.head_channels[0], last_out, 1)
            }
            (Family::OfaMobileNetV3, LayerRole::Head, 0) => {
                LayerSlice::new(round_channels(self.head_channels[0] as f64 * w), last_out, 1)
            }
            (Family::OfaMobileNetV3, LayerRole::Head, 1) => LayerSlice::new(
                self.head_channels[1],
                round_channels(self.head_channels[0] as f64 * w),
                1,
            ),
            (Family::OfaMobileNetV3, LayerRole::Head, _) => {
                LayerSlice::new(self.head_channels[2], self.head_channels[1], 1)
            }
            (family, role, b) => unreachable!("bad stem/head layer {role:?}/{b} for {family:?}"),
        }
    }

    /// Input channels of block `b` of stage `s` at width `w`.
    fn block_in_channels(&self, s: usize, b: usize, w: f64) -> usize {
        if b > 0 {
            round_channels(self.stages[s].base_out as f64 * w)
        } else if s == 0 {
            round_channels(self.stem_base as f64 * w)
        } else {
            round_channels(self.stages[s - 1].base_out as f64 * w)
        }
    }

    /// Total FLOPs of a SubGraph (only meaningful for SubNets, but defined
    /// for any weight subset).
    #[must_use]
    pub fn subgraph_flops(&self, graph: &SubGraph) -> u64 {
        self.layers.iter().zip(graph.slices()).map(|(l, s)| l.flops(s)).sum()
    }

    /// Total weight bytes of a SubGraph.
    #[must_use]
    pub fn subgraph_weight_bytes(&self, graph: &SubGraph) -> u64 {
        self.layers.iter().zip(graph.slices()).map(|(l, s)| l.weight_bytes(s)).sum()
    }

    /// The SubGraph shared by *all* given SubNets (fold of intersections) —
    /// the "shared weights" size reported in §5.1.
    ///
    /// # Panics
    /// Panics if `subnets` is empty.
    #[must_use]
    pub fn shared_subgraph(&self, subnets: &[SubNet]) -> SubGraph {
        assert!(!subnets.is_empty(), "need at least one SubNet");
        subnets[1..].iter().fold(subnets[0].graph.clone(), |acc, sn| acc.intersect(&sn.graph))
    }

    /// Truncates `base` to approximately `budget_bytes` by uniformly scaling
    /// its kernel/channel counts (binary search on the scale factor).
    /// Returns `base` unchanged if it already fits.
    #[must_use]
    pub fn subgraph_to_budget(&self, base: &SubGraph, budget_bytes: u64) -> SubGraph {
        self.subgraph_to_budget_biased(base, budget_bytes, 0.0)
    }

    /// Like [`Self::subgraph_to_budget`], but applies a per-layer emphasis
    /// tilt before fitting: `bias > 0` keeps proportionally more of the
    /// *later* layers, `bias < 0` more of the *earlier* layers, `0` is
    /// uniform. Different tilts of the same SubNet produce shape-diverse
    /// cache candidates (§3.2's set `S`).
    #[must_use]
    pub fn subgraph_to_budget_biased(
        &self,
        base: &SubGraph,
        budget_bytes: u64,
        bias: f64,
    ) -> SubGraph {
        if bias == 0.0 && self.subgraph_weight_bytes(base) <= budget_bytes {
            return base.clone();
        }
        let n = base.num_layers().max(1);
        let tilt: Vec<f64> = (0..n)
            .map(|l| {
                let x = (l as f64 + 0.5) / n as f64 - 0.5; // -0.5 .. 0.5
                (bias * x).exp()
            })
            .collect();
        let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
        // The tilt can exceed 1 for some layers; alpha=1 with clamping still
        // bounds each layer by its own slice, so hi=1 is a valid upper bound
        // only if it fits; grow hi until the fit fails or alpha covers base.
        let fits = |alpha: f64| {
            let alphas: Vec<f64> = tilt.iter().map(|t| alpha * t).collect();
            let g = base.scaled_per_layer(&alphas);
            (self.subgraph_weight_bytes(&g) <= budget_bytes).then_some(g)
        };
        let mut best = SubGraph::empty(base.num_layers());
        while hi < 64.0 && fits(hi).is_some() {
            lo = hi;
            hi *= 2.0;
        }
        if let Some(g) = fits(lo) {
            best = g;
        }
        for _ in 0..40 {
            let mid = (lo + hi) / 2.0;
            if let Some(g) = fits(mid) {
                best = g;
                lo = mid;
            } else {
                hi = mid;
            }
        }
        best
    }

    /// The maximal SubGraph (every layer at full size).
    #[must_use]
    pub fn full_graph(&self) -> SubGraph {
        SubGraph::new(self.layers.iter().map(ConvLayerDesc::max_slice).collect())
    }

    /// Number of layers in the flattened list.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

/// Finalizes a freshly built SuperNet skeleton: fixes each layer's maximal
/// dimensions to the slice produced by the max config, then calibrates the
/// accuracy profile to the `[a_min, a_max]` band over the achievable FLOP
/// range.
///
/// # Panics
/// Panics if the skeleton's max/min configs fail to materialize — a zoo
/// construction bug.
pub fn finalize_supernet(net: &mut SuperNet, a_min: f64, a_max: f64, curvature: f64) {
    let max_cfg = net.max_config();
    let max_sn = net.materialize("max", &max_cfg).expect("max config must materialize");
    for (layer, slice) in net.layers.iter_mut().zip(max_sn.graph.slices()) {
        assert!(!slice.is_empty(), "layer {} inactive under max config", layer.name);
        layer.max_kernels = slice.kernels;
        layer.max_channels = slice.channels;
    }
    let f_max = net.materialize("max", &max_cfg).expect("max config").flops;
    let f_min = net.materialize("min", &net.min_config()).expect("min config").flops;
    net.accuracy = AccuracyModel::new(a_min, a_max, f_min, f_max, curvature);
}

fn max_f(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

fn min_f(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Builder assembling the flattened layer list for a SuperNet skeleton.
///
/// Used by the `zoo` constructors; tracks spatial dimensions as layers are
/// appended and back-fills each layer's maximal dimensions by materializing
/// the max config.
#[derive(Debug)]
pub struct LayerListBuilder {
    layers: Vec<ConvLayerDesc>,
    hw: usize,
}

impl LayerListBuilder {
    /// Starts a layer list at the given input resolution.
    #[must_use]
    pub fn new(input_hw: usize) -> Self {
        Self { layers: Vec::new(), hw: input_hw }
    }

    /// Current spatial resolution.
    #[must_use]
    pub fn hw(&self) -> usize {
        self.hw
    }

    /// Appends a conv layer at the current resolution and advances the
    /// resolution by its stride.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        name: String,
        stage: usize,
        block: usize,
        role: LayerRole,
        kind: ConvKind,
        kernel: usize,
        elastic_kernel: bool,
        stride: usize,
    ) {
        self.push_inner(name, stage, block, role, kind, kernel, elastic_kernel, stride, true);
    }

    /// Appends a conv layer on a *parallel branch* (e.g. a residual
    /// downsample): it reads the current resolution but does not advance it —
    /// the main-path layer carrying the same stride does.
    #[allow(clippy::too_many_arguments)]
    pub fn push_parallel(
        &mut self,
        name: String,
        stage: usize,
        block: usize,
        role: LayerRole,
        kind: ConvKind,
        kernel: usize,
        stride: usize,
    ) {
        self.push_inner(name, stage, block, role, kind, kernel, false, stride, false);
    }

    #[allow(clippy::too_many_arguments)]
    fn push_inner(
        &mut self,
        name: String,
        stage: usize,
        block: usize,
        role: LayerRole,
        kind: ConvKind,
        kernel: usize,
        elastic_kernel: bool,
        stride: usize,
        advance: bool,
    ) {
        let id = crate::layer::LayerId(self.layers.len());
        self.layers.push(ConvLayerDesc {
            id,
            name,
            stage,
            block,
            role,
            kind,
            max_kernels: usize::MAX,  // back-filled from the max config
            max_channels: usize::MAX, // back-filled from the max config
            max_kernel_size: kernel,
            elastic_kernel,
            stride,
            in_h: self.hw,
            in_w: self.hw,
        });
        if advance {
            self.hw = crate::layer::spatial_out(self.hw, stride);
        }
    }

    /// Appends a 1×1 layer operating on pooled (1×1 spatial) features.
    pub fn push_pooled(&mut self, name: String, stage: usize, block: usize, role: LayerRole) {
        let id = crate::layer::LayerId(self.layers.len());
        self.layers.push(ConvLayerDesc {
            id,
            name,
            stage,
            block,
            role,
            kind: ConvKind::Dense,
            max_kernels: usize::MAX,
            max_channels: usize::MAX,
            max_kernel_size: 1,
            elastic_kernel: false,
            stride: 1,
            in_h: 1,
            in_w: 1,
        });
    }

    /// Explicitly reduces the tracked resolution (e.g. a stem max-pool,
    /// which is not a weight layer).
    pub fn downsample(&mut self, factor: usize) {
        self.hw = crate::layer::spatial_out(self.hw, factor);
    }

    /// Finishes the list.
    #[must_use]
    pub fn build(self) -> Vec<ConvLayerDesc> {
        self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_channels_snaps_to_multiple_of_8() {
        assert_eq!(round_channels(64.0), 64);
        assert_eq!(round_channels(63.0), 64);
        assert_eq!(round_channels(60.0), 64);
        assert_eq!(round_channels(59.0), 56);
        assert_eq!(round_channels(1.0), 8);
    }

    #[test]
    fn elastic_space_cardinality_counts_products() {
        let e = ElasticSpace {
            depth_choices: vec![2, 3, 4],
            expand_choices: vec![0.2, 0.25, 0.35],
            kernel_choices: vec![],
            width_choices: vec![1.0],
        };
        // (3 depths * 3 expands)^2 stages * 1 width = 81
        assert_eq!(e.cardinality(2), 81);
    }

    #[test]
    fn layer_list_builder_tracks_resolution() {
        let mut b = LayerListBuilder::new(224);
        b.push("stem".into(), NO_STAGE, 0, LayerRole::Stem, ConvKind::Dense, 7, false, 2);
        assert_eq!(b.hw(), 112);
        b.downsample(2);
        assert_eq!(b.hw(), 56);
        b.push("c1".into(), 0, 0, LayerRole::Spatial, ConvKind::Dense, 3, false, 2);
        assert_eq!(b.hw(), 28);
        let layers = b.build();
        assert_eq!(layers[1].in_h, 56);
    }
}
