//! Vectorized SubGraph/SubNet encodings and the running-average mechanism.
//!
//! The scheduler (Fig. 6) represents each network as a `2N`-vector
//! `[K₁, C₁, K₂, C₂, …, K_N, C_N]` of per-layer kernel and channel counts,
//! maintains a **running average** of the SubNets served for the past `Q`
//! queries, and caches the candidate SubGraph *closest* to that average.
//! Averaging, unlike pure intersection, preserves information about kernels
//! and channels that were frequent but not universal.

use serde::{Deserialize, Serialize};

use crate::subgraph::SubGraph;

/// A `2N`-dimensional vectorized network representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetVector(Vec<f64>);

impl NetVector {
    /// Encodes a SubGraph as `[K₁, C₁, …, K_N, C_N]`.
    #[must_use]
    pub fn encode(graph: &SubGraph) -> Self {
        let mut v = Vec::with_capacity(graph.num_layers() * 2);
        for s in graph.slices() {
            v.push(s.kernels as f64);
            v.push(s.channels as f64);
        }
        Self(v)
    }

    /// Creates a vector directly from components.
    #[must_use]
    pub fn from_components(v: Vec<f64>) -> Self {
        Self(v)
    }

    /// The raw components.
    #[must_use]
    pub fn components(&self) -> &[f64] {
        &self.0
    }

    /// Dimensionality (`2N`).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Euclidean (L2) distance — the scheduler's similarity measure.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    #[must_use]
    pub fn dist_l2(&self, other: &Self) -> f64 {
        assert_eq!(self.0.len(), other.0.len(), "vector dims differ");
        self.0.iter().zip(&other.0).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
    }

    /// L2 norm.
    #[must_use]
    pub fn norm_l2(&self) -> f64 {
        self.0.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Cosine distance `1 − cos(a, b)` (alternative measure for ablations).
    ///
    /// # Panics
    /// Panics if dimensions differ.
    #[must_use]
    pub fn dist_cosine(&self, other: &Self) -> f64 {
        assert_eq!(self.0.len(), other.0.len(), "vector dims differ");
        let dot: f64 = self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum();
        let den = self.norm_l2() * other.norm_l2();
        if den == 0.0 {
            return 1.0;
        }
        1.0 - dot / den
    }
}

/// The cache-hit proxy of Appendix A.4: `‖SN ∩ G‖₂ / ‖SN‖₂`, the fraction of
/// the served SubNet's (vectorized) weights found in the cached SubGraph.
#[must_use]
pub fn overlap_ratio(served: &SubGraph, cached: &SubGraph) -> f64 {
    let sn = NetVector::encode(served);
    let denom = sn.norm_l2();
    if denom == 0.0 {
        return 0.0;
    }
    let inter = NetVector::encode(&served.intersect(cached));
    inter.norm_l2() / denom
}

/// Windowed running average over the last `Q` served SubNet vectors
/// (`AvgNet` in Algorithm 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningAvg {
    window: usize,
    dim: usize,
    buf: Vec<NetVector>,
    next: usize,
    filled: bool,
}

impl RunningAvg {
    /// Creates an averager over a window of `q` vectors of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `q == 0`.
    #[must_use]
    pub fn new(q: usize, dim: usize) -> Self {
        assert!(q > 0, "window must be positive");
        Self { window: q, dim, buf: Vec::with_capacity(q), next: 0, filled: false }
    }

    /// Window length `Q`.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of vectors currently contributing to the average.
    #[must_use]
    pub fn len(&self) -> usize {
        if self.filled {
            self.window
        } else {
            self.buf.len()
        }
    }

    /// Whether no vectors have been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records one served SubNet vector.
    ///
    /// # Panics
    /// Panics if the vector dimension does not match.
    pub fn push(&mut self, v: NetVector) {
        assert_eq!(v.dim(), self.dim, "vector dim mismatch");
        if self.buf.len() < self.window {
            self.buf.push(v);
            if self.buf.len() == self.window {
                self.filled = true;
            }
        } else {
            self.buf[self.next] = v;
            self.next = (self.next + 1) % self.window;
        }
    }

    /// Current average vector, or `None` before any push.
    #[must_use]
    pub fn mean(&self) -> Option<NetVector> {
        if self.buf.is_empty() {
            return None;
        }
        let mut acc = vec![0.0; self.dim];
        for v in &self.buf {
            for (a, b) in acc.iter_mut().zip(v.components()) {
                *a += b;
            }
        }
        let n = self.buf.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        Some(NetVector::from_components(acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerSlice;

    fn sg(dims: &[(usize, usize)]) -> SubGraph {
        SubGraph::new(dims.iter().map(|&(k, c)| LayerSlice::new(k, c, 3)).collect())
    }

    #[test]
    fn encode_interleaves_k_and_c() {
        let v = NetVector::encode(&sg(&[(8, 4), (16, 12)]));
        assert_eq!(v.components(), &[8.0, 4.0, 16.0, 12.0]);
    }

    #[test]
    fn l2_distance_matches_hand_computation() {
        let a = NetVector::from_components(vec![0.0, 3.0]);
        let b = NetVector::from_components(vec![4.0, 0.0]);
        assert!((a.dist_l2(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn l2_distance_is_symmetric_and_zero_on_self() {
        let a = NetVector::encode(&sg(&[(8, 4), (16, 12)]));
        let b = NetVector::encode(&sg(&[(4, 8), (12, 16)]));
        assert_eq!(a.dist_l2(&b), b.dist_l2(&a));
        assert_eq!(a.dist_l2(&a), 0.0);
    }

    #[test]
    fn cosine_distance_of_parallel_vectors_is_zero() {
        let a = NetVector::from_components(vec![1.0, 2.0]);
        let b = NetVector::from_components(vec![2.0, 4.0]);
        assert!(a.dist_cosine(&b).abs() < 1e-12);
    }

    #[test]
    fn cosine_distance_of_orthogonal_vectors_is_one() {
        let a = NetVector::from_components(vec![1.0, 0.0]);
        let b = NetVector::from_components(vec![0.0, 1.0]);
        assert!((a.dist_cosine(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_ratio_is_one_for_subset_cache_superset() {
        let sn = sg(&[(8, 4), (16, 12)]);
        let cached = sg(&[(8, 8), (16, 16)]);
        assert!((overlap_ratio(&sn, &cached) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_ratio_is_zero_for_empty_cache() {
        let sn = sg(&[(8, 4)]);
        let cached = SubGraph::empty(1);
        assert_eq!(overlap_ratio(&sn, &cached), 0.0);
    }

    #[test]
    fn overlap_ratio_between_zero_and_one() {
        let sn = sg(&[(8, 4), (16, 12)]);
        let cached = sg(&[(4, 4), (8, 6)]);
        let r = overlap_ratio(&sn, &cached);
        assert!(r > 0.0 && r < 1.0, "r={r}");
    }

    #[test]
    fn running_avg_before_push_is_none() {
        let r = RunningAvg::new(4, 2);
        assert!(r.mean().is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn running_avg_partial_window_averages_available() {
        let mut r = RunningAvg::new(4, 1);
        r.push(NetVector::from_components(vec![2.0]));
        r.push(NetVector::from_components(vec![4.0]));
        assert_eq!(r.mean().unwrap().components(), &[3.0]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn running_avg_evicts_oldest_beyond_window() {
        let mut r = RunningAvg::new(2, 1);
        for x in [1.0, 2.0, 3.0] {
            r.push(NetVector::from_components(vec![x]));
        }
        // Window is [2, 3] after pushing 3.
        assert_eq!(r.mean().unwrap().components(), &[2.5]);
    }

    #[test]
    fn running_avg_preserves_frequent_but_not_universal_info() {
        // Three nets: two use 16 kernels, one uses 8. Pure intersection would
        // collapse to 8; the average keeps the signal at 13.33.
        let mut r = RunningAvg::new(3, 2);
        r.push(NetVector::encode(&sg(&[(16, 8)])));
        r.push(NetVector::encode(&sg(&[(16, 8)])));
        r.push(NetVector::encode(&sg(&[(8, 8)])));
        let mean = r.mean().unwrap();
        assert!(mean.components()[0] > 13.0 && mean.components()[0] < 14.0);
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn running_avg_rejects_dim_mismatch() {
        let mut r = RunningAvg::new(2, 2);
        r.push(NetVector::from_components(vec![1.0]));
    }
}
