//! SubNet configurations and materialized SubNets.

use serde::{Deserialize, Serialize};

use crate::subgraph::SubGraph;

/// Elastic-dimension choice for one SubNet of a SuperNet (OFA-style).
///
/// * `depths[s]` — how many blocks of stage `s` are active (top-`d` blocks).
/// * `expands[s]` — expand ratio applied to stage `s`'s block mid-channels.
/// * `kernels[s]` — spatial kernel size for stage `s` (only used by families
///   with elastic kernels; empty means "architecture default").
/// * `width_mult` — global channel width multiplier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubNetConfig {
    /// Active block count per stage.
    pub depths: Vec<usize>,
    /// Expand ratio per stage.
    pub expands: Vec<f64>,
    /// Kernel size per stage (may be empty for fixed-kernel families).
    pub kernels: Vec<usize>,
    /// Global width multiplier.
    pub width_mult: f64,
}

impl SubNetConfig {
    /// Creates a config with the given per-stage depths/expands and defaults
    /// (no elastic kernel, width 1.0).
    #[must_use]
    pub fn new(depths: Vec<usize>, expands: Vec<f64>) -> Self {
        Self { depths, expands, kernels: Vec::new(), width_mult: 1.0 }
    }

    /// Sets per-stage kernel sizes.
    #[must_use]
    pub fn with_kernels(mut self, kernels: Vec<usize>) -> Self {
        self.kernels = kernels;
        self
    }

    /// Sets the width multiplier.
    #[must_use]
    pub fn with_width(mut self, width_mult: f64) -> Self {
        self.width_mult = width_mult;
        self
    }

    /// Kernel size for a stage, or `default` when kernels are not elastic.
    #[must_use]
    pub fn kernel_for_stage(&self, stage: usize, default: usize) -> usize {
        self.kernels.get(stage).copied().unwrap_or(default)
    }

    /// Whether this config is elementwise dominated by `other`
    /// (⇒ its materialized SubNet is a subgraph of `other`'s when width
    /// multipliers are equal).
    #[must_use]
    pub fn dominated_by(&self, other: &Self) -> bool {
        self.depths.len() == other.depths.len()
            && self.depths.iter().zip(&other.depths).all(|(a, b)| a <= b)
            && self.expands.iter().zip(&other.expands).all(|(a, b)| a <= b)
            && self.kernels.iter().zip(&other.kernels).all(|(a, b)| a <= b)
            && self.width_mult <= other.width_mult
    }
}

/// A materialized SubNet: the weight subset plus its serving metadata.
///
/// Accuracy is a *fixed* property of the SubNet; latency depends on the
/// accelerator state (the cached SubGraph), which is why it is not stored
/// here but looked up through `sushi-sched`'s latency table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubNet {
    /// Short name, e.g. `"A"`.. `"G"` for the paper's Pareto picks.
    pub name: String,
    /// The elastic configuration that produced this SubNet.
    pub config: SubNetConfig,
    /// The activated weight subset.
    pub graph: SubGraph,
    /// Top-1 accuracy in `[0, 1]` (from the calibrated accuracy profile).
    pub accuracy: f64,
    /// Total forward-pass FLOPs.
    pub flops: u64,
    /// Total weight bytes (int8 + per-kernel scale/bias words).
    pub weight_bytes: u64,
}

impl SubNet {
    /// Accuracy in percent, as reported in the paper's figures.
    #[must_use]
    pub fn accuracy_pct(&self) -> f64 {
        self.accuracy * 100.0
    }

    /// Weight megabytes (10^6 bytes, as used in the paper's §5.1 sizes).
    #[must_use]
    pub fn weight_mb(&self) -> f64 {
        self.weight_bytes as f64 / 1e6
    }

    /// GFLOPs for one forward pass.
    #[must_use]
    pub fn gflops(&self) -> f64 {
        self.flops as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builder_sets_fields() {
        let c =
            SubNetConfig::new(vec![2, 3], vec![0.2, 0.25]).with_kernels(vec![3, 5]).with_width(0.8);
        assert_eq!(c.depths, vec![2, 3]);
        assert_eq!(c.kernels, vec![3, 5]);
        assert_eq!(c.width_mult, 0.8);
    }

    #[test]
    fn kernel_for_stage_falls_back_to_default() {
        let c = SubNetConfig::new(vec![2], vec![0.2]);
        assert_eq!(c.kernel_for_stage(0, 3), 3);
        let c = c.with_kernels(vec![7]);
        assert_eq!(c.kernel_for_stage(0, 3), 7);
    }

    #[test]
    fn dominated_by_requires_all_dims() {
        let small = SubNetConfig::new(vec![2, 2], vec![0.2, 0.2]).with_width(0.65);
        let big = SubNetConfig::new(vec![4, 4], vec![0.35, 0.35]).with_width(1.0);
        assert!(small.dominated_by(&big));
        assert!(!big.dominated_by(&small));
    }

    #[test]
    fn dominated_by_is_reflexive() {
        let c = SubNetConfig::new(vec![3], vec![0.25]);
        assert!(c.dominated_by(&c));
    }

    #[test]
    fn mixed_configs_are_incomparable() {
        let a = SubNetConfig::new(vec![4, 2], vec![0.2, 0.2]);
        let b = SubNetConfig::new(vec![2, 4], vec![0.2, 0.2]);
        assert!(!a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
    }

    #[test]
    fn subnet_unit_conversions() {
        let sn = SubNet {
            name: "A".into(),
            config: SubNetConfig::new(vec![], vec![]),
            graph: SubGraph::empty(0),
            accuracy: 0.7525,
            flops: 2_500_000_000,
            weight_bytes: 7_580_000,
        };
        assert!((sn.accuracy_pct() - 75.25).abs() < 1e-9);
        assert!((sn.weight_mb() - 7.58).abs() < 1e-9);
        assert!((sn.gflops() - 2.5).abs() < 1e-9);
    }
}
