//! # sushi-wsnet
//!
//! Weight-shared DNN (WS-DNN) substrate for the SUSHI (MLSys'23)
//! reproduction: SuperNets, SubNets, SubGraphs and the algebra connecting
//! them (§2.1 of the paper).
//!
//! * [`arch::SuperNet`] — an OFA-style elastic architecture whose SubNets
//!   share weights by construction: "the smallest SubNet's weights are
//!   shared by all other SubNets and the weights of the largest SubNet
//!   contain all other SubNets within it".
//! * [`subnet::SubNet`] — a forward-pass-capable weight subset with a fixed
//!   accuracy and elastic configuration.
//! * [`subgraph::SubGraph`] — *any* weight subset, closed under
//!   intersection/union; the unit of Persistent-Buffer caching.
//! * [`encoding`] — the scheduler's `[K₁, C₁, …]` vectorization, running
//!   average and distance measures (Fig. 6).
//! * [`zoo`] — OFA-ResNet50 and OFA-MobileNetV3 with the paper's 6 + 7
//!   Pareto SubNet picks, plus toy nets for functional validation.
//! * [`weights::WeightStore`] — deterministic int8 weights for the whole
//!   SuperNet, sliceable per SubGraph.
//!
//! # Example
//!
//! ```
//! use sushi_wsnet::zoo;
//!
//! let net = zoo::resnet50_supernet();
//! let picks = zoo::paper_subnets(&net);
//! assert_eq!(picks.len(), 6);
//!
//! // Queries activating different SubNets share weights: the intersection
//! // of any two SubNets is a cacheable SubGraph.
//! let shared = picks[2].graph.intersect(&picks[4].graph);
//! assert!(shared.is_subset_of(&picks[2].graph));
//! assert!(net.subgraph_weight_bytes(&shared) > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accuracy;
pub mod arch;
pub mod encoding;
pub mod ir_build;
pub mod layer;
pub mod pareto;
pub mod sampler;
pub mod subgraph;
pub mod subnet;
pub mod weights;
pub mod zoo;

pub use arch::{Family, SuperNet};
pub use encoding::{NetVector, RunningAvg};
pub use layer::{ConvLayerDesc, LayerSlice};
pub use subgraph::SubGraph;
pub use subnet::{SubNet, SubNetConfig};
pub use weights::WeightStore;
