//! Convolution layer descriptors and per-layer cost math.
//!
//! A [`ConvLayerDesc`] describes one convolution of the *SuperNet at its
//! maximal dimensions*. SubNets and SubGraphs activate a slice of it (top-K
//! kernels × top-C channels × center kernel window, OFA-style ordering), and
//! all FLOP/byte accounting takes the active slice as a parameter.

use serde::{Deserialize, Serialize};

/// Index of a layer within a [`crate::arch::SuperNet`]'s flattened layer list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LayerId(pub usize);

/// Whether a convolution is dense or depthwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConvKind {
    /// Dense convolution: every kernel sees every input channel.
    Dense,
    /// Depthwise convolution: one kernel per channel (`groups == channels`).
    Depthwise,
}

/// Functional role of a layer inside its block (used for reporting and for
/// family-specific materialization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerRole {
    /// Input stem convolution.
    Stem,
    /// 1×1 reduce/expand at a block entry.
    Expand,
    /// Main spatial convolution of a block.
    Spatial,
    /// 1×1 projection at a block exit.
    Project,
    /// Residual downsample projection.
    Downsample,
    /// Squeeze-and-excite reduce (1×1 on pooled features).
    SeReduce,
    /// Squeeze-and-excite expand (1×1 on pooled features).
    SeExpand,
    /// Final feature expansion / classifier head (1×1 on pooled features).
    Head,
}

/// One convolution layer of the SuperNet at maximal (elastic-upper-bound) size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvLayerDesc {
    /// Position in the SuperNet's flattened layer list.
    pub id: LayerId,
    /// Human-readable name, e.g. `"s2.b1.conv2"`.
    pub name: String,
    /// Stage index this layer belongs to (stem/head use `usize::MAX`).
    pub stage: usize,
    /// Block index within the stage (stem/head use `usize::MAX`).
    pub block: usize,
    /// Role within the block.
    pub role: LayerRole,
    /// Dense or depthwise.
    pub kind: ConvKind,
    /// Maximum number of kernels `K` (output channels).
    pub max_kernels: usize,
    /// Maximum number of input channels `C`.
    pub max_channels: usize,
    /// Maximum (and default) square kernel size.
    pub max_kernel_size: usize,
    /// Whether the kernel size is elastic (OFA center-crop semantics).
    pub elastic_kernel: bool,
    /// Spatial stride.
    pub stride: usize,
    /// Input feature-map height (fixed across SubNets).
    pub in_h: usize,
    /// Input feature-map width.
    pub in_w: usize,
}

/// An active slice of one layer: top-`kernels` × top-`channels` ×
/// center-`kernel_size` window. `(0, 0, _)` means the layer is inactive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerSlice {
    /// Active kernel count (output channels).
    pub kernels: usize,
    /// Active input channel count.
    pub channels: usize,
    /// Active square kernel size (center crop of the max kernel).
    pub kernel_size: usize,
}

impl LayerSlice {
    /// An inactive (empty) slice.
    #[must_use]
    pub const fn empty() -> Self {
        Self { kernels: 0, channels: 0, kernel_size: 0 }
    }

    /// Creates an active slice.
    #[must_use]
    pub const fn new(kernels: usize, channels: usize, kernel_size: usize) -> Self {
        Self { kernels, channels, kernel_size }
    }

    /// Whether the slice activates no weights.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.kernels == 0 || self.channels == 0 || self.kernel_size == 0
    }

    /// Lattice meet: the largest slice contained in both (shared weights).
    #[must_use]
    pub fn intersect(&self, other: &Self) -> Self {
        Self {
            kernels: self.kernels.min(other.kernels),
            channels: self.channels.min(other.channels),
            kernel_size: self.kernel_size.min(other.kernel_size),
        }
    }

    /// Lattice join: the smallest slice containing both.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        Self {
            kernels: self.kernels.max(other.kernels),
            channels: self.channels.max(other.channels),
            kernel_size: self.kernel_size.max(other.kernel_size),
        }
    }

    /// Whether `self` is contained in `other` (all weights shared).
    #[must_use]
    pub fn is_subset_of(&self, other: &Self) -> bool {
        self.is_empty()
            || (self.kernels <= other.kernels
                && self.channels <= other.channels
                && self.kernel_size <= other.kernel_size)
    }
}

impl ConvLayerDesc {
    /// Output spatial height (same padding `k/2`, fixed across kernel choices
    /// because OFA pads each elastic kernel to keep spatial dims constant).
    #[must_use]
    pub fn out_h(&self) -> usize {
        spatial_out(self.in_h, self.stride)
    }

    /// Output spatial width.
    #[must_use]
    pub fn out_w(&self) -> usize {
        spatial_out(self.in_w, self.stride)
    }

    /// The maximal slice of this layer.
    #[must_use]
    pub fn max_slice(&self) -> LayerSlice {
        LayerSlice::new(self.max_kernels, self.max_channels, self.max_kernel_size)
    }

    /// Clamps a slice to this layer's maxima.
    #[must_use]
    pub fn clamp_slice(&self, s: LayerSlice) -> LayerSlice {
        LayerSlice {
            kernels: s.kernels.min(self.max_kernels),
            channels: s.channels.min(self.max_channels),
            kernel_size: if s.kernel_size == 0 {
                0
            } else {
                s.kernel_size.min(self.max_kernel_size)
            },
        }
    }

    /// Multiply-accumulate count for an active slice.
    ///
    /// Depthwise layers perform `K · R · S` MACs per output pixel (channels
    /// field is per-group = 1); dense layers perform `K · C · R · S`.
    #[must_use]
    pub fn macs(&self, s: &LayerSlice) -> u64 {
        if s.is_empty() {
            return 0;
        }
        let spatial = (self.out_h() * self.out_w()) as u64;
        let rs = (s.kernel_size * s.kernel_size) as u64;
        match self.kind {
            ConvKind::Dense => s.kernels as u64 * s.channels as u64 * rs * spatial,
            ConvKind::Depthwise => s.kernels as u64 * rs * spatial,
        }
    }

    /// FLOPs (2 × MACs) for an active slice.
    #[must_use]
    pub fn flops(&self, s: &LayerSlice) -> u64 {
        2 * self.macs(s)
    }

    /// Weight bytes (int8) for an active slice, including per-kernel int32
    /// scale and bias words (footnote 3 of the paper).
    #[must_use]
    pub fn weight_bytes(&self, s: &LayerSlice) -> u64 {
        if s.is_empty() {
            return 0;
        }
        let rs = (s.kernel_size * s.kernel_size) as u64;
        let core = match self.kind {
            ConvKind::Dense => s.kernels as u64 * s.channels as u64 * rs,
            ConvKind::Depthwise => s.kernels as u64 * rs,
        };
        core + 8 * s.kernels as u64 // i32 scale + i32 bias per kernel
    }

    /// Input activation bytes (int8) for an active slice.
    ///
    /// Depthwise layers read `kernels` channels (the slice's channel field is
    /// per-group); dense layers read `channels`.
    #[must_use]
    pub fn iact_bytes(&self, s: &LayerSlice) -> u64 {
        if s.is_empty() {
            return 0;
        }
        let ch = match self.kind {
            ConvKind::Dense => s.channels,
            ConvKind::Depthwise => s.kernels,
        };
        (ch * self.in_h * self.in_w) as u64
    }

    /// Output activation bytes (int8) for an active slice.
    #[must_use]
    pub fn oact_bytes(&self, s: &LayerSlice) -> u64 {
        if s.is_empty() {
            return 0;
        }
        (s.kernels * self.out_h() * self.out_w()) as u64
    }

    /// Total bytes moved assuming no on-chip reuse (weights + iActs + oActs).
    #[must_use]
    pub fn total_bytes(&self, s: &LayerSlice) -> u64 {
        self.weight_bytes(s) + self.iact_bytes(s) + self.oact_bytes(s)
    }

    /// Arithmetic intensity (FLOPs per byte moved) — the Fig. 2 metric.
    #[must_use]
    pub fn arithmetic_intensity(&self, s: &LayerSlice) -> f64 {
        let bytes = self.total_bytes(s);
        if bytes == 0 {
            return 0.0;
        }
        self.flops(s) as f64 / bytes as f64
    }
}

/// Spatial output size under OFA "same" padding: `ceil(in / stride)`.
#[must_use]
pub fn spatial_out(input: usize, stride: usize) -> usize {
    input.div_ceil(stride.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_layer() -> ConvLayerDesc {
        ConvLayerDesc {
            id: LayerId(0),
            name: "test.conv".into(),
            stage: 0,
            block: 0,
            role: LayerRole::Spatial,
            kind: ConvKind::Dense,
            max_kernels: 64,
            max_channels: 32,
            max_kernel_size: 3,
            elastic_kernel: false,
            stride: 1,
            in_h: 8,
            in_w: 8,
        }
    }

    fn depthwise_layer() -> ConvLayerDesc {
        ConvLayerDesc {
            kind: ConvKind::Depthwise,
            max_channels: 1,
            max_kernel_size: 7,
            elastic_kernel: true,
            ..dense_layer()
        }
    }

    #[test]
    fn spatial_out_same_padding() {
        assert_eq!(spatial_out(56, 1), 56);
        assert_eq!(spatial_out(56, 2), 28);
        assert_eq!(spatial_out(57, 2), 29);
    }

    #[test]
    fn macs_scale_with_slice_dims() {
        let l = dense_layer();
        let full = l.macs(&l.max_slice());
        let half = l.macs(&LayerSlice::new(32, 32, 3));
        assert_eq!(full, 64 * 32 * 9 * 64);
        assert_eq!(half * 2, full);
    }

    #[test]
    fn empty_slice_costs_nothing() {
        let l = dense_layer();
        let e = LayerSlice::empty();
        assert_eq!(l.macs(&e), 0);
        assert_eq!(l.weight_bytes(&e), 0);
        assert_eq!(l.iact_bytes(&e), 0);
        assert_eq!(l.oact_bytes(&e), 0);
    }

    #[test]
    fn depthwise_macs_ignore_channel_dim() {
        let l = depthwise_layer();
        let s = LayerSlice::new(64, 1, 7);
        assert_eq!(l.macs(&s), 64 * 49 * 64);
    }

    #[test]
    fn depthwise_iact_reads_kernel_count_channels() {
        let l = depthwise_layer();
        let s = LayerSlice::new(40, 1, 5);
        assert_eq!(l.iact_bytes(&s), 40 * 8 * 8);
    }

    #[test]
    fn weight_bytes_include_scale_and_bias() {
        let l = dense_layer();
        let s = LayerSlice::new(2, 4, 3);
        assert_eq!(l.weight_bytes(&s), 2 * 4 * 9 + 8 * 2);
    }

    #[test]
    fn smaller_kernel_crop_shrinks_weights_quadratically() {
        let l = depthwise_layer();
        let w7 = l.weight_bytes(&LayerSlice::new(8, 1, 7)) - 8 * 8;
        let w3 = l.weight_bytes(&LayerSlice::new(8, 1, 3)) - 8 * 8;
        assert_eq!(w7 / w3, 49 / 9);
    }

    #[test]
    fn intersect_is_elementwise_min() {
        let a = LayerSlice::new(10, 20, 7);
        let b = LayerSlice::new(15, 10, 5);
        assert_eq!(a.intersect(&b), LayerSlice::new(10, 10, 5));
    }

    #[test]
    fn union_is_elementwise_max() {
        let a = LayerSlice::new(10, 20, 7);
        let b = LayerSlice::new(15, 10, 5);
        assert_eq!(a.union(&b), LayerSlice::new(15, 20, 7));
    }

    #[test]
    fn subset_reflexive_and_empty_is_universal_bottom() {
        let a = LayerSlice::new(10, 20, 7);
        assert!(a.is_subset_of(&a));
        assert!(LayerSlice::empty().is_subset_of(&a));
        assert!(!a.is_subset_of(&LayerSlice::new(9, 20, 7)));
    }

    #[test]
    fn clamp_slice_respects_maxima() {
        let l = dense_layer();
        let s = l.clamp_slice(LayerSlice::new(1000, 1000, 9));
        assert_eq!(s, l.max_slice());
    }

    #[test]
    fn arithmetic_intensity_grows_with_channels() {
        // More channels -> more reuse of each activation byte -> higher AI.
        let l = dense_layer();
        let small = l.arithmetic_intensity(&LayerSlice::new(64, 8, 3));
        let large = l.arithmetic_intensity(&LayerSlice::new(64, 32, 3));
        assert!(large > small);
    }

    #[test]
    fn stride_halves_output_dims() {
        let l = ConvLayerDesc { stride: 2, ..dense_layer() };
        assert_eq!(l.out_h(), 4);
        assert_eq!(l.out_w(), 4);
    }
}
