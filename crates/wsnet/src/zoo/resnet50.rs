//! OFA-ResNet50: elastic-depth/expand/width bottleneck SuperNet.
//!
//! Calibrated so the six paper picks (A–F) span the §5.1 size band
//! (7.58 MB … 27.47 MB int8, ~7.55 MB shared) and the 75–80% top-1 band.

use crate::accuracy::AccuracyModel;
use crate::arch::{
    finalize_supernet, ElasticSpace, Family, LayerListBuilder, StageSpec, SuperNet, NO_STAGE,
};
use crate::layer::{ConvKind, LayerRole};
use crate::subnet::{SubNet, SubNetConfig};

/// Stage output channels at width 1.0 (vanilla ResNet50).
const BASE_OUT: [usize; 4] = [256, 512, 1024, 2048];
/// First-block stride per stage.
const STRIDES: [usize; 4] = [1, 2, 2, 2];
/// Maximum blocks per stage (elastic depth upper bound).
const MAX_BLOCKS: usize = 4;

/// Builds the OFA-ResNet50 SuperNet.
///
/// Elastic space: depth ∈ {2, 3, 4} blocks/stage (§2.1: "top k ∈ [2; 4]
/// blocks per-stage"), expand ratio ∈ {0.2, 0.25, 0.35}, width multiplier
/// ∈ {0.65, 0.8, 1.0} — the OFA-ResNet50 search space.
#[must_use]
pub fn resnet50_supernet() -> SuperNet {
    let mut b = LayerListBuilder::new(224);
    b.push("stem".into(), NO_STAGE, 0, LayerRole::Stem, ConvKind::Dense, 7, false, 2);
    b.downsample(2); // 3x3 max-pool, stride 2 (not a weight layer)
    for (s, (&_base, &stride)) in BASE_OUT.iter().zip(STRIDES.iter()).enumerate() {
        for blk in 0..MAX_BLOCKS {
            let bs = if blk == 0 { stride } else { 1 };
            let p = format!("s{s}.b{blk}");
            b.push(format!("{p}.conv1"), s, blk, LayerRole::Expand, ConvKind::Dense, 1, false, 1);
            if blk == 0 {
                b.push_parallel(
                    format!("{p}.downsample"),
                    s,
                    blk,
                    LayerRole::Downsample,
                    ConvKind::Dense,
                    1,
                    bs,
                );
            }
            b.push(format!("{p}.conv2"), s, blk, LayerRole::Spatial, ConvKind::Dense, 3, false, bs);
            b.push(format!("{p}.conv3"), s, blk, LayerRole::Project, ConvKind::Dense, 1, false, 1);
        }
    }
    b.push_pooled("head.fc".into(), NO_STAGE, 0, LayerRole::Head);

    let mut net = SuperNet {
        name: "OFA-ResNet50".into(),
        family: Family::OfaResNet50,
        input_hw: 224,
        stem_base: 64,
        head_channels: vec![1000],
        stages: BASE_OUT
            .iter()
            .zip(STRIDES.iter())
            .map(|(&base_out, &stride)| StageSpec {
                max_blocks: MAX_BLOCKS,
                base_out,
                stride,
                se: false,
                default_kernel: 3,
            })
            .collect(),
        layers: b.build(),
        elastic: ElasticSpace {
            depth_choices: vec![2, 3, 4],
            expand_choices: vec![0.2, 0.25, 0.35],
            kernel_choices: vec![],
            width_choices: vec![0.65, 0.8, 1.0],
        },
        accuracy: AccuracyModel::uncalibrated(),
    };
    // 75.2%..80.3% top-1 band of the paper's Figs. 10a/15b.
    finalize_supernet(&mut net, 0.752, 0.803, 3.0);
    net
}

/// The six Pareto SubNets A (smallest) … F (largest) used throughout §5.
///
/// A is dominated by every other pick, so the shared SubGraph of the set is
/// A's graph — reproducing the paper's "shared weights take up 7.55 MB"
/// against a 7.58 MB smallest SubNet.
///
/// # Panics
/// Panics if `net` is not the OFA-ResNet50 SuperNet from this module.
#[must_use]
pub fn resnet50_paper_subnets(net: &SuperNet) -> Vec<SubNet> {
    assert_eq!(net.family, Family::OfaResNet50, "expects the OFA-ResNet50 SuperNet");
    let picks: [(&str, [usize; 4], f64, f64); 6] = [
        ("A", [2, 2, 2, 2], 0.25, 0.65),
        ("B", [2, 2, 2, 2], 0.25, 0.80),
        ("C", [3, 3, 3, 3], 0.25, 0.80),
        ("D", [3, 3, 3, 3], 0.25, 1.00),
        ("E", [3, 4, 4, 3], 0.25, 1.00),
        ("F", [4, 4, 4, 4], 0.25, 1.00),
    ];
    picks
        .iter()
        .map(|(name, depths, expand, width)| {
            let cfg = SubNetConfig::new(depths.to_vec(), vec![*expand; 4]).with_width(*width);
            net.materialize(*name, &cfg).expect("paper pick must be valid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count_matches_structure() {
        // 1 stem + 4 stages * (4 blocks * 3 convs + 1 downsample) + 1 head = 54.
        let net = resnet50_supernet();
        assert_eq!(net.num_layers(), 1 + 4 * (4 * 3 + 1) + 1);
    }

    #[test]
    fn stem_sees_full_resolution_and_stage0_sees_56() {
        let net = resnet50_supernet();
        assert_eq!(net.layers[0].in_h, 224);
        let s0 = net.layers.iter().find(|l| l.stage == 0).unwrap();
        assert_eq!(s0.in_h, 56);
    }

    #[test]
    fn final_stage_runs_at_7x7() {
        let net = resnet50_supernet();
        let last_conv =
            net.layers.iter().rfind(|l| l.stage == 3 && l.role == LayerRole::Project).unwrap();
        assert_eq!(last_conv.in_h, 7);
    }

    #[test]
    fn max_subnet_has_vanilla_resnet50_dims() {
        let net = resnet50_supernet();
        // conv2 of stage 3 at width 1.0, expand 0.35: rc(2048*0.35) = 720.
        let l = net.layers.iter().find(|l| l.stage == 3 && l.role == LayerRole::Spatial).unwrap();
        assert_eq!(l.max_kernels, 720);
        assert_eq!(l.max_channels, 720);
    }

    #[test]
    fn paper_picks_span_expected_size_band() {
        let net = resnet50_supernet();
        let picks = resnet50_paper_subnets(&net);
        let a = &picks[0];
        let f = &picks[5];
        // §5.1: sizes in [7.58, 27.47] MB. Synthetic arch must land within 25%.
        assert!((a.weight_mb() - 7.58).abs() / 7.58 < 0.25, "A = {:.2} MB", a.weight_mb());
        assert!((f.weight_mb() - 27.47).abs() / 27.47 < 0.25, "F = {:.2} MB", f.weight_mb());
    }

    #[test]
    fn paper_picks_sizes_and_accuracy_are_monotone() {
        let net = resnet50_supernet();
        let picks = resnet50_paper_subnets(&net);
        for w in picks.windows(2) {
            assert!(w[0].weight_bytes < w[1].weight_bytes, "{} !< {}", w[0].name, w[1].name);
            assert!(w[0].accuracy <= w[1].accuracy);
            assert!(w[0].flops < w[1].flops);
        }
    }

    #[test]
    fn accuracy_band_matches_paper() {
        let net = resnet50_supernet();
        let picks = resnet50_paper_subnets(&net);
        assert!(picks[0].accuracy_pct() >= 75.0 && picks[0].accuracy_pct() <= 76.5);
        assert!(picks[5].accuracy_pct() >= 79.0 && picks[5].accuracy_pct() <= 80.5);
    }

    #[test]
    fn smallest_pick_is_shared_subgraph() {
        let net = resnet50_supernet();
        let picks = resnet50_paper_subnets(&net);
        let shared = net.shared_subgraph(&picks);
        // A is dominated by all others, so shared == A's graph.
        assert_eq!(shared, picks[0].graph);
        let shared_mb = net.subgraph_weight_bytes(&shared) as f64 / 1e6;
        assert!(shared_mb > 5.0, "shared = {shared_mb:.2} MB");
    }

    #[test]
    fn nested_configs_produce_nested_graphs() {
        let net = resnet50_supernet();
        let small = net
            .materialize("s", &SubNetConfig::new(vec![2; 4], vec![0.2; 4]).with_width(0.65))
            .unwrap();
        let big = net
            .materialize("b", &SubNetConfig::new(vec![4; 4], vec![0.35; 4]).with_width(1.0))
            .unwrap();
        assert!(small.graph.is_subset_of(&big.graph));
    }

    #[test]
    fn dropped_blocks_are_trailing_ones() {
        let net = resnet50_supernet();
        let sn = net.materialize("d2", &SubNetConfig::new(vec![2; 4], vec![0.25; 4])).unwrap();
        for (layer, slice) in net.layers.iter().zip(sn.graph.slices()) {
            if layer.stage != NO_STAGE {
                let active = layer.block < 2;
                assert_eq!(!slice.is_empty(), active, "layer {}", layer.name);
            }
        }
    }

    #[test]
    fn flops_of_max_config_in_resnet_ballpark() {
        // Vanilla ResNet50 is ~4.1 GFLOPs; the elastic max (wider mids, 16
        // blocks) must exceed it but stay within an order of magnitude.
        let net = resnet50_supernet();
        let max = net.materialize("max", &net.max_config()).unwrap();
        assert!(max.gflops() > 4.0 && max.gflops() < 20.0, "{} GFLOPs", max.gflops());
    }

    #[test]
    fn rejects_depth_outside_choices_range() {
        let net = resnet50_supernet();
        let bad = SubNetConfig::new(vec![5, 2, 2, 2], vec![0.25; 4]);
        assert!(net.validate_config(&bad).is_err());
    }
}
