//! Tiny SuperNets for functional (bit-exact) validation of the accelerator.
//!
//! Full-size workloads run in timing-only mode; these toys are small enough
//! to execute numerically in tests, while exercising the same
//! materialization rules as the full zoo entries.

use crate::accuracy::AccuracyModel;
use crate::arch::{
    finalize_supernet, ElasticSpace, Family, LayerListBuilder, StageSpec, SuperNet, NO_STAGE,
};
use crate::layer::{ConvKind, LayerRole};

/// A miniature ResNet-style SuperNet: 16×16 input, two stages of ≤2
/// bottleneck blocks.
#[must_use]
pub fn toy_supernet() -> SuperNet {
    let bases = [16usize, 24];
    let strides = [1usize, 2];
    let mut b = LayerListBuilder::new(16);
    b.push("stem".into(), NO_STAGE, 0, LayerRole::Stem, ConvKind::Dense, 3, false, 1);
    for (s, (&_base, &stride)) in bases.iter().zip(strides.iter()).enumerate() {
        for blk in 0..2 {
            let bs = if blk == 0 { stride } else { 1 };
            let p = format!("s{s}.b{blk}");
            b.push(format!("{p}.conv1"), s, blk, LayerRole::Expand, ConvKind::Dense, 1, false, 1);
            if blk == 0 {
                b.push_parallel(
                    format!("{p}.downsample"),
                    s,
                    blk,
                    LayerRole::Downsample,
                    ConvKind::Dense,
                    1,
                    bs,
                );
            }
            b.push(format!("{p}.conv2"), s, blk, LayerRole::Spatial, ConvKind::Dense, 3, false, bs);
            b.push(format!("{p}.conv3"), s, blk, LayerRole::Project, ConvKind::Dense, 1, false, 1);
        }
    }
    b.push_pooled("head.fc".into(), NO_STAGE, 0, LayerRole::Head);

    let mut net = SuperNet {
        name: "Toy-ResNet".into(),
        family: Family::OfaResNet50,
        input_hw: 16,
        stem_base: 8,
        head_channels: vec![32],
        stages: bases
            .iter()
            .zip(strides.iter())
            .map(|(&base_out, &stride)| StageSpec {
                max_blocks: 2,
                base_out,
                stride,
                se: false,
                default_kernel: 3,
            })
            .collect(),
        layers: b.build(),
        elastic: ElasticSpace {
            depth_choices: vec![1, 2],
            expand_choices: vec![0.25, 0.5],
            kernel_choices: vec![],
            width_choices: vec![0.5, 1.0],
        },
        accuracy: AccuracyModel::uncalibrated(),
    };
    finalize_supernet(&mut net, 0.70, 0.80, 3.0);
    net
}

/// A miniature MobileNetV3-style SuperNet with one SE stage and elastic
/// 3/5 kernels, for depthwise + SE functional coverage.
#[must_use]
pub fn toy_mobilenet_supernet() -> SuperNet {
    let bases = [16usize, 24];
    let strides = [1usize, 2];
    let se = [false, true];
    let mut b = LayerListBuilder::new(16);
    b.push("stem".into(), NO_STAGE, 0, LayerRole::Stem, ConvKind::Dense, 3, false, 1);
    for (s, ((&_base, &stride), &has_se)) in
        bases.iter().zip(strides.iter()).zip(se.iter()).enumerate()
    {
        for blk in 0..2 {
            let bs = if blk == 0 { stride } else { 1 };
            let p = format!("s{s}.b{blk}");
            b.push(format!("{p}.expand"), s, blk, LayerRole::Expand, ConvKind::Dense, 1, false, 1);
            b.push(format!("{p}.dw"), s, blk, LayerRole::Spatial, ConvKind::Depthwise, 5, true, bs);
            if has_se {
                b.push_pooled(format!("{p}.se_reduce"), s, blk, LayerRole::SeReduce);
                b.push_pooled(format!("{p}.se_expand"), s, blk, LayerRole::SeExpand);
            }
            b.push(
                format!("{p}.project"),
                s,
                blk,
                LayerRole::Project,
                ConvKind::Dense,
                1,
                false,
                1,
            );
        }
    }
    b.push_pooled("head.final_expand".into(), NO_STAGE, 0, LayerRole::Head);
    b.push_pooled("head.fc1".into(), NO_STAGE, 1, LayerRole::Head);
    b.push_pooled("head.fc2".into(), NO_STAGE, 2, LayerRole::Head);

    let mut net = SuperNet {
        name: "Toy-MobileNet".into(),
        family: Family::OfaMobileNetV3,
        input_hw: 16,
        stem_base: 8,
        head_channels: vec![64, 96, 32],
        stages: bases
            .iter()
            .zip(strides.iter())
            .zip(se.iter())
            .map(|((&base_out, &stride), &se)| StageSpec {
                max_blocks: 2,
                base_out,
                stride,
                se,
                default_kernel: 5,
            })
            .collect(),
        layers: b.build(),
        elastic: ElasticSpace {
            depth_choices: vec![1, 2],
            expand_choices: vec![2.0, 3.0],
            kernel_choices: vec![3, 5],
            width_choices: vec![1.0],
        },
        accuracy: AccuracyModel::uncalibrated(),
    };
    finalize_supernet(&mut net, 0.70, 0.80, 3.0);
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_nets_materialize_min_and_max() {
        for net in [toy_supernet(), toy_mobilenet_supernet()] {
            let min = net.materialize("min", &net.min_config()).unwrap();
            let max = net.materialize("max", &net.max_config()).unwrap();
            assert!(min.flops < max.flops, "{}", net.name);
            assert!(min.graph.is_subset_of(&max.graph));
            assert_eq!(max.graph, net.full_graph());
        }
    }

    #[test]
    fn toy_nets_are_small_enough_for_functional_tests() {
        for net in [toy_supernet(), toy_mobilenet_supernet()] {
            let max = net.materialize("max", &net.max_config()).unwrap();
            assert!(max.weight_bytes < 200_000, "{}: {} bytes", net.name, max.weight_bytes);
            assert!(max.flops < 20_000_000, "{}: {} flops", net.name, max.flops);
        }
    }

    #[test]
    fn toy_accuracy_band_is_calibrated() {
        let net = toy_supernet();
        let min = net.materialize("min", &net.min_config()).unwrap();
        let max = net.materialize("max", &net.max_config()).unwrap();
        assert!((min.accuracy - 0.70).abs() < 1e-9);
        assert!((max.accuracy - 0.80).abs() < 1e-9);
    }
}
