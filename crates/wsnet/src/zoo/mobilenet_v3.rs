//! OFA-MobileNetV3: elastic-depth/expand/kernel MBConv SuperNet with
//! squeeze-and-excite.
//!
//! Calibrated so the seven paper picks (A–G) span the §5.1 size band
//! (2.97 MB … 4.74 MB int8, ~2.90 MB shared) and the ~76–80% top-1 band.

use crate::accuracy::AccuracyModel;
use crate::arch::{
    finalize_supernet, ElasticSpace, Family, LayerListBuilder, StageSpec, SuperNet, NO_STAGE,
};
use crate::layer::{ConvKind, LayerRole};
use crate::subnet::{SubNet, SubNetConfig};

/// Stage output channels (MobileNetV3-Large-style widths).
const BASE_OUT: [usize; 5] = [24, 40, 80, 112, 160];
/// First-block stride per stage.
const STRIDES: [usize; 5] = [2, 2, 2, 1, 2];
/// Which stages carry squeeze-and-excite modules.
const SE: [bool; 5] = [false, true, false, true, true];
/// Maximum blocks per stage.
const MAX_BLOCKS: usize = 4;

/// Builds the OFA-MobileNetV3 SuperNet.
///
/// Elastic space: depth ∈ {2, 3, 4}, expand ratio ∈ {3, 4, 6}, kernel size
/// ∈ {3, 5, 7} — the OFA-MobileNetV3 search space (width fixed at 1.0, as
/// in OFA).
#[must_use]
pub fn mobilenet_v3_supernet() -> SuperNet {
    let mut b = LayerListBuilder::new(224);
    b.push("stem".into(), NO_STAGE, 0, LayerRole::Stem, ConvKind::Dense, 3, false, 2);
    for (s, ((&_base, &stride), &se)) in
        BASE_OUT.iter().zip(STRIDES.iter()).zip(SE.iter()).enumerate()
    {
        for blk in 0..MAX_BLOCKS {
            let bs = if blk == 0 { stride } else { 1 };
            let p = format!("s{s}.b{blk}");
            b.push(format!("{p}.expand"), s, blk, LayerRole::Expand, ConvKind::Dense, 1, false, 1);
            b.push(format!("{p}.dw"), s, blk, LayerRole::Spatial, ConvKind::Depthwise, 7, true, bs);
            if se {
                b.push_pooled(format!("{p}.se_reduce"), s, blk, LayerRole::SeReduce);
                b.push_pooled(format!("{p}.se_expand"), s, blk, LayerRole::SeExpand);
            }
            b.push(
                format!("{p}.project"),
                s,
                blk,
                LayerRole::Project,
                ConvKind::Dense,
                1,
                false,
                1,
            );
        }
    }
    // Final 1x1 expand + two classifier layers, all on pooled features.
    b.push_pooled("head.final_expand".into(), NO_STAGE, 0, LayerRole::Head);
    b.push_pooled("head.fc1".into(), NO_STAGE, 1, LayerRole::Head);
    b.push_pooled("head.fc2".into(), NO_STAGE, 2, LayerRole::Head);

    let mut net = SuperNet {
        name: "OFA-MobileNetV3".into(),
        family: Family::OfaMobileNetV3,
        input_hw: 224,
        stem_base: 16,
        head_channels: vec![960, 1280, 1000],
        stages: BASE_OUT
            .iter()
            .zip(STRIDES.iter())
            .zip(SE.iter())
            .map(|((&base_out, &stride), &se)| StageSpec {
                max_blocks: MAX_BLOCKS,
                base_out,
                stride,
                se,
                default_kernel: 7,
            })
            .collect(),
        layers: b.build(),
        elastic: ElasticSpace {
            depth_choices: vec![2, 3, 4],
            expand_choices: vec![3.0, 4.0, 6.0],
            kernel_choices: vec![3, 5, 7],
            width_choices: vec![1.0],
        },
        accuracy: AccuracyModel::uncalibrated(),
    };
    // ~75.9%..80.1% top-1 band of the paper's Figs. 10b/15d.
    finalize_supernet(&mut net, 0.759, 0.801, 3.5);
    net
}

/// The seven Pareto SubNets A (smallest) … G (largest) used throughout §5.
///
/// A is dominated by every other pick, making it the shared SubGraph —
/// reproducing §5.1's "shared weights take up 2.90 MB" against a 2.97 MB
/// smallest SubNet.
///
/// # Panics
/// Panics if `net` is not the OFA-MobileNetV3 SuperNet from this module.
#[must_use]
pub fn mobilenet_v3_paper_subnets(net: &SuperNet) -> Vec<SubNet> {
    assert_eq!(net.family, Family::OfaMobileNetV3, "expects the OFA-MobileNetV3 SuperNet");
    let picks: [(&str, [usize; 5], f64, [usize; 5]); 7] = [
        ("A", [2, 2, 2, 2, 2], 3.0, [3, 3, 3, 3, 3]),
        ("B", [2, 2, 2, 2, 2], 3.0, [5, 5, 5, 5, 5]),
        ("C", [2, 2, 2, 2, 2], 4.0, [5, 5, 5, 5, 5]),
        ("D", [3, 3, 3, 3, 3], 3.0, [5, 5, 5, 5, 5]),
        ("E", [3, 3, 3, 3, 3], 4.0, [5, 5, 5, 5, 5]),
        ("F", [3, 3, 3, 3, 3], 4.0, [5, 5, 5, 7, 7]),
        ("G", [3, 3, 3, 3, 3], 4.0, [7, 7, 7, 7, 7]),
    ];
    picks
        .iter()
        .map(|(name, depths, expand, kernels)| {
            let cfg =
                SubNetConfig::new(depths.to_vec(), vec![*expand; 5]).with_kernels(kernels.to_vec());
            net.materialize(*name, &cfg).expect("paper pick must be valid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerSlice;

    #[test]
    fn layer_count_matches_structure() {
        // 1 stem + per stage: 4 blocks * (3 convs + 2 SE if se) + 3 head layers.
        let per_stage: usize = SE.iter().map(|&se| 4 * (3 + if se { 2 } else { 0 })).sum();
        let net = mobilenet_v3_supernet();
        assert_eq!(net.num_layers(), 1 + per_stage + 3);
    }

    #[test]
    fn depthwise_layers_have_unit_channel_dim() {
        let net = mobilenet_v3_supernet();
        for l in net.layers.iter().filter(|l| l.kind == ConvKind::Depthwise) {
            assert_eq!(l.max_channels, 1, "layer {}", l.name);
            assert_eq!(l.max_kernel_size, 7);
            assert!(l.elastic_kernel);
        }
    }

    #[test]
    fn elastic_kernel_shrinks_weight_bytes() {
        let net = mobilenet_v3_supernet();
        let k7 = net
            .materialize(
                "k7",
                &SubNetConfig::new(vec![2; 5], vec![3.0; 5]).with_kernels(vec![7; 5]),
            )
            .unwrap();
        let k3 = net
            .materialize(
                "k3",
                &SubNetConfig::new(vec![2; 5], vec![3.0; 5]).with_kernels(vec![3; 5]),
            )
            .unwrap();
        assert!(k3.weight_bytes < k7.weight_bytes);
        assert!(k3.graph.is_subset_of(&k7.graph));
    }

    #[test]
    fn se_layers_exist_only_in_se_stages() {
        let net = mobilenet_v3_supernet();
        for l in &net.layers {
            if l.role == LayerRole::SeReduce || l.role == LayerRole::SeExpand {
                assert!(SE[l.stage], "SE layer in non-SE stage: {}", l.name);
            }
        }
    }

    #[test]
    fn paper_picks_span_expected_size_band() {
        let net = mobilenet_v3_supernet();
        let picks = mobilenet_v3_paper_subnets(&net);
        let a = &picks[0];
        let g = &picks[6];
        // §5.1: sizes in [2.97, 4.74] MB; synthetic arch within 30%.
        assert!((a.weight_mb() - 2.97).abs() / 2.97 < 0.30, "A = {:.2} MB", a.weight_mb());
        assert!((g.weight_mb() - 4.74).abs() / 4.74 < 0.30, "G = {:.2} MB", g.weight_mb());
    }

    #[test]
    fn paper_picks_are_monotone_in_flops_and_accuracy() {
        let net = mobilenet_v3_supernet();
        let picks = mobilenet_v3_paper_subnets(&net);
        for w in picks.windows(2) {
            assert!(w[0].flops < w[1].flops, "{} !< {}", w[0].name, w[1].name);
            assert!(w[0].accuracy <= w[1].accuracy);
        }
    }

    #[test]
    fn smallest_pick_is_shared_subgraph() {
        let net = mobilenet_v3_supernet();
        let picks = mobilenet_v3_paper_subnets(&net);
        assert_eq!(net.shared_subgraph(&picks), picks[0].graph);
    }

    #[test]
    fn mobv3_is_much_smaller_than_resnet50() {
        let m = mobilenet_v3_supernet();
        let r = super::super::resnet50::resnet50_supernet();
        let m_max = m.materialize("max", &m.max_config()).unwrap();
        let r_max = r.materialize("max", &r.max_config()).unwrap();
        assert!(m_max.weight_bytes * 3 < r_max.weight_bytes);
    }

    #[test]
    fn mobv3_flops_in_expected_ballpark() {
        // MobileNetV3-Large is ~0.44 GFLOPs; OFA max should be a small multiple.
        let net = mobilenet_v3_supernet();
        let max = net.materialize("max", &net.max_config()).unwrap();
        assert!(max.gflops() > 0.4 && max.gflops() < 5.0, "{} GFLOPs", max.gflops());
    }

    #[test]
    fn se_slices_track_expanded_mid_channels() {
        let net = mobilenet_v3_supernet();
        let sn = net
            .materialize("t", &SubNetConfig::new(vec![2; 5], vec![4.0; 5]).with_kernels(vec![5; 5]))
            .unwrap();
        for (l, s) in net.layers.iter().zip(sn.graph.slices()) {
            if l.role == LayerRole::SeReduce && !s.is_empty() {
                // Reduce maps mid -> ~mid/4.
                assert!(s.channels >= s.kernels * 3, "layer {} slice {s:?}", l.name);
            }
        }
        let _ = LayerSlice::empty();
    }
}
