//! The SuperNet model zoo: the paper's two workloads plus small synthetic
//! nets for functional validation.
//!
//! §5.1: "We choose weight shared version of ResNet50 and MobV3 as two
//! SuperNets. To evaluate SUSHI with full range on the pareto-frontier, we
//! pick a sequence of 6 and 7 SubNets from ResNet50 and MobV3."

mod mobilenet_v3;
mod resnet50;
mod toy;

pub use mobilenet_v3::{mobilenet_v3_paper_subnets, mobilenet_v3_supernet};
pub use resnet50::{resnet50_paper_subnets, resnet50_supernet};
pub use toy::{toy_mobilenet_supernet, toy_supernet};

use crate::arch::{Family, SuperNet};
use crate::subnet::SubNet;

/// The paper's Pareto-frontier SubNet picks for a SuperNet (6 for ResNet50,
/// 7 for MobV3), named `"A"` (smallest) onward.
///
/// # Panics
/// Panics if called on a SuperNet family with no canonical picks (the toy
/// nets work because they reuse the paper families' materialization rules,
/// but picks are only defined for the full-size zoo entries).
#[must_use]
pub fn paper_subnets(net: &SuperNet) -> Vec<SubNet> {
    match net.family {
        Family::OfaResNet50 => resnet50_paper_subnets(net),
        Family::OfaMobileNetV3 => mobilenet_v3_paper_subnets(net),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_supernets_have_distinct_families() {
        assert_eq!(resnet50_supernet().family, Family::OfaResNet50);
        assert_eq!(mobilenet_v3_supernet().family, Family::OfaMobileNetV3);
    }

    #[test]
    fn paper_subnets_dispatches_on_family() {
        assert_eq!(paper_subnets(&resnet50_supernet()).len(), 6);
        assert_eq!(paper_subnets(&mobilenet_v3_supernet()).len(), 7);
    }
}
