//! Pareto-frontier extraction over the latency/accuracy tradeoff space
//! (Fig. 1b).

/// A candidate point in the tradeoff space: lower `latency` and higher
/// `accuracy` are both better.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Serving latency (any consistent unit).
    pub latency: f64,
    /// Accuracy in `[0, 1]`.
    pub accuracy: f64,
}

/// Returns the indices of Pareto-optimal points (no other point is both
/// faster and at least as accurate, or as fast and strictly more accurate).
/// Indices are returned sorted by ascending latency.
#[must_use]
pub fn pareto_frontier(points: &[TradeoffPoint]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a].latency.partial_cmp(&points[b].latency).unwrap_or(std::cmp::Ordering::Equal).then(
            points[b]
                .accuracy
                .partial_cmp(&points[a].accuracy)
                .unwrap_or(std::cmp::Ordering::Equal),
        )
    });
    let mut frontier = Vec::new();
    let mut best_acc = f64::NEG_INFINITY;
    for &i in &order {
        if points[i].accuracy > best_acc {
            frontier.push(i);
            best_acc = points[i].accuracy;
        }
    }
    frontier
}

/// Whether point `a` dominates point `b` (at least as good on both axes,
/// strictly better on one).
#[must_use]
pub fn dominates(a: TradeoffPoint, b: TradeoffPoint) -> bool {
    (a.latency <= b.latency && a.accuracy >= b.accuracy)
        && (a.latency < b.latency || a.accuracy > b.accuracy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(latency: f64, accuracy: f64) -> TradeoffPoint {
        TradeoffPoint { latency, accuracy }
    }

    #[test]
    fn single_point_is_frontier() {
        assert_eq!(pareto_frontier(&[p(1.0, 0.8)]), vec![0]);
    }

    #[test]
    fn dominated_point_excluded() {
        // Point 1 is slower and less accurate than point 0.
        let f = pareto_frontier(&[p(1.0, 0.8), p(2.0, 0.7)]);
        assert_eq!(f, vec![0]);
    }

    #[test]
    fn tradeoff_points_all_kept_sorted_by_latency() {
        let f = pareto_frontier(&[p(3.0, 0.9), p(1.0, 0.7), p(2.0, 0.8)]);
        assert_eq!(f, vec![1, 2, 0]);
    }

    #[test]
    fn equal_latency_keeps_only_more_accurate() {
        let f = pareto_frontier(&[p(1.0, 0.7), p(1.0, 0.9)]);
        assert_eq!(f, vec![1]);
    }

    #[test]
    fn frontier_members_are_mutually_nondominating() {
        let pts = vec![p(1.0, 0.70), p(1.5, 0.75), p(2.0, 0.72), p(3.0, 0.80), p(2.5, 0.60)];
        let f = pareto_frontier(&pts);
        for &i in &f {
            for &j in &f {
                if i != j {
                    assert!(!dominates(pts[i], pts[j]), "{i} dominates {j}");
                }
            }
        }
    }

    #[test]
    fn dominates_requires_strict_improvement() {
        assert!(!dominates(p(1.0, 0.8), p(1.0, 0.8)));
        assert!(dominates(p(1.0, 0.8), p(1.0, 0.7)));
        assert!(dominates(p(0.9, 0.8), p(1.0, 0.8)));
        assert!(!dominates(p(0.9, 0.7), p(1.0, 0.8)));
    }

    #[test]
    fn empty_input_empty_frontier() {
        assert!(pareto_frontier(&[]).is_empty());
    }
}
