//! SubNet → IR translation: builds the typed `sushi-ir` op-graph whose
//! lowered plan drives the fused serving datapath.
//!
//! [`build_ir`] mirrors the accelerator's sequential runtime layer by layer
//! — same stem/block/head structure, same activation placement, same
//! residual-shape rule — so a plan lowered from the *unrewritten* graph
//! computes exactly what the per-layer interpreter computes. The fusion
//! rewrites then only change *where* bias/requant/activation run (inside
//! the conv epilogue), never their arithmetic, which is what keeps fused
//! logits bit-identical to the unfused oracle.
//!
//! Translation runs once per cache install; queries never see the graph.

use sushi_ir::{Graph, IrError, NodeId, Op, Plan};
use sushi_tensor::ops::activation::Activation;
use sushi_tensor::ops::conv::Conv2dParams;
use sushi_tensor::Shape4;

use crate::arch::{Family, SuperNet, NO_STAGE};
use crate::layer::{ConvKind, ConvLayerDesc, LayerRole, LayerSlice};
use crate::subnet::SubNet;

/// Conv hyper-parameters for one layer under one SubNet slice — the same
/// resolution rule the accelerator's runtime and cache builder use.
#[must_use]
pub fn layer_conv_params(layer: &ConvLayerDesc, slice: &LayerSlice) -> Conv2dParams {
    let groups = match layer.kind {
        ConvKind::Dense => 1,
        ConvKind::Depthwise => slice.kernels,
    };
    Conv2dParams::new(slice.kernel_size, slice.kernel_size)
        .with_stride(layer.stride)
        .with_padding(slice.kernel_size / 2)
        .with_groups(groups)
}

/// Builds the op-graph for one forward pass of `subnet` (batch 1).
///
/// The graph comes back *unnormalized*: every conv is followed by explicit
/// `Bias`/`Requant`/`Act` nodes, exactly matching the per-layer runtime.
/// Run [`sushi_ir::normalize`] and [`Plan::lower`] (or just [`build_plan`])
/// to reach the fused executable form.
///
/// # Errors
/// Returns an error when the built graph fails validation — inconsistent
/// zoo layer definitions, surfaced at install time.
pub fn build_ir(net: &SuperNet, subnet: &SubNet) -> Result<Graph, IrError> {
    let mut b =
        Builder { net, subnet, g: Graph::new(Shape4::new(1, 3, net.input_hw, net.input_hw)) };
    let layers = &net.layers;
    let mut idx = 0usize;
    // Stem.
    let mut x = b.conv_chain(idx, b.g.input(), Activation::Relu);
    idx += 1;
    if net.family == Family::OfaResNet50 {
        x = b.g.push(Op::MaxPool { window: 3, stride: 2, padding: 1 }, &[x]);
    }
    // Stages.
    while idx < layers.len() && layers[idx].stage != NO_STAGE {
        let (next_idx, y) = b.build_block(idx, x)?;
        if let Some(y) = y {
            x = y;
        }
        idx = next_idx;
    }
    // Head: global pool then 1×1 convs on pooled features.
    let mut h = b.g.push(Op::GlobalAvgPool, &[x]);
    while idx < layers.len() {
        let act = if idx + 1 < layers.len() { Activation::Relu } else { Activation::None };
        h = b.conv_chain(idx, h, act);
        idx += 1;
    }
    let o = b.g.push(Op::Output, &[h]);
    b.g.set_output(o);
    b.g.validate()?;
    Ok(b.g)
}

/// [`build_ir`], normalized with the standard rewrites and lowered to an
/// executable [`Plan`] — the one-call install-time entry point.
///
/// # Errors
/// Returns an error when graph construction, a rewrite, or lowering fails.
pub fn build_plan(net: &SuperNet, subnet: &SubNet) -> Result<Plan, IrError> {
    let mut g = build_ir(net, subnet)?;
    sushi_ir::normalize(&mut g)?;
    Plan::lower(&g)
}

struct Builder<'a> {
    net: &'a SuperNet,
    subnet: &'a SubNet,
    g: Graph,
}

impl Builder<'_> {
    fn slice(&self, idx: usize) -> LayerSlice {
        self.subnet.graph.slice(idx)
    }

    /// Pushes the per-layer runtime sequence for conv layer `idx`:
    /// `Conv → Bias → Requant` plus an `Act` when `act` is not `None`.
    fn conv_chain(&mut self, idx: usize, x: NodeId, act: Activation) -> NodeId {
        let layer = &self.net.layers[idx];
        let slice = self.slice(idx);
        let c = self.g.push(
            Op::Conv {
                layer: idx,
                params: layer_conv_params(layer, &slice),
                out_channels: slice.kernels,
                epilogue: sushi_ir::EpilogueSpec::default(),
            },
            &[x],
        );
        let bs = self.g.push(Op::Bias { layer: idx, channels: slice.kernels }, &[c]);
        let r = self.g.push(Op::Requant, &[bs]);
        if act == Activation::None {
            r
        } else {
            self.g.push(Op::Act(act), &[r])
        }
    }

    /// Inferred output shape of `id` (install-time only; O(graph)).
    fn shape_of(&self, id: NodeId) -> Result<Shape4, IrError> {
        let facts = self.g.infer()?;
        facts[id.0]
            .map(|f| f.shape)
            .ok_or(IrError::Validation { node: id.0, what: "shape of a dead node" })
    }

    /// Translates one block starting at layer `idx`; returns the index after
    /// the block and the block's output node (`None` when inactive).
    fn build_block(&mut self, idx: usize, x: NodeId) -> Result<(usize, Option<NodeId>), IrError> {
        let layers = &self.net.layers;
        let stage = layers[idx].stage;
        let block = layers[idx].block;
        let mut end = idx;
        while end < layers.len() && layers[end].stage == stage && layers[end].block == block {
            end += 1;
        }
        if self.slice(idx).is_empty() {
            return Ok((end, None));
        }
        let find =
            |role: LayerRole| -> Option<usize> { (idx..end).find(|&i| layers[i].role == role) };
        match self.net.family {
            Family::OfaResNet50 => {
                let c1 = find(LayerRole::Expand).expect("bottleneck conv1");
                let c2 = find(LayerRole::Spatial).expect("bottleneck conv2");
                let c3 = find(LayerRole::Project).expect("bottleneck conv3");
                let y = self.conv_chain(c1, x, Activation::Relu);
                let y = self.conv_chain(c2, y, Activation::Relu);
                let y = self.conv_chain(c3, y, Activation::None);
                let identity = if let Some(ds) = find(LayerRole::Downsample) {
                    Some(self.conv_chain(ds, x, Activation::None))
                } else if self.shape_of(x)? == self.shape_of(y)? {
                    Some(x)
                } else {
                    None
                };
                let summed = match identity {
                    Some(id) => self.g.push(Op::Add { act: Activation::None }, &[y, id]),
                    None => y,
                };
                let out = self.g.push(Op::Act(Activation::Relu), &[summed]);
                Ok((end, Some(out)))
            }
            Family::OfaMobileNetV3 => {
                let ex = find(LayerRole::Expand).expect("mbconv expand");
                let dw = find(LayerRole::Spatial).expect("mbconv depthwise");
                let pj = find(LayerRole::Project).expect("mbconv project");
                let y = self.conv_chain(ex, x, Activation::HSwish);
                let mut y = self.conv_chain(dw, y, Activation::HSwish);
                if let (Some(se_r), Some(se_e)) =
                    (find(LayerRole::SeReduce), find(LayerRole::SeExpand))
                {
                    y = self.g.push(Op::SqueezeExcite { reduce: se_r, expand: se_e }, &[y]);
                }
                let y = self.conv_chain(pj, y, Activation::None);
                let out = if self.shape_of(x)? == self.shape_of(y)? {
                    self.g.push(Op::Add { act: Activation::None }, &[y, x])
                } else {
                    y
                };
                Ok((end, Some(out)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use sushi_ir::Step;

    fn nets() -> Vec<SuperNet> {
        vec![
            zoo::toy_supernet(),
            zoo::toy_mobilenet_supernet(),
            zoo::resnet50_supernet(),
            zoo::mobilenet_v3_supernet(),
        ]
    }

    #[test]
    fn every_zoo_subnet_builds_validates_and_lowers() {
        for net in nets() {
            for (label, cfg) in [("max", net.max_config()), ("min", net.min_config())] {
                let sn = net.materialize(label, &cfg).unwrap();
                let g = build_ir(&net, &sn)
                    .unwrap_or_else(|e| panic!("{}/{label}: build failed: {e}", net.name));
                let plan = build_plan(&net, &sn)
                    .unwrap_or_else(|e| panic!("{}/{label}: lower failed: {e}", net.name));
                assert!(!plan.steps.is_empty(), "{}/{label}: empty plan", net.name);
                assert!(g.live_count() > plan.steps.len());
            }
        }
    }

    #[test]
    fn full_resnet_max_lowers_mostly_fused() {
        let net = zoo::resnet50_supernet();
        let sn = net.materialize("max", &net.max_config()).unwrap();
        let plan = build_plan(&net, &sn).unwrap();
        let convs = plan
            .steps
            .iter()
            .filter(|s| matches!(s, Step::Conv { .. } | Step::FusedConv { .. }))
            .count();
        // The big dense bottleneck convs all clear the GEMM threshold.
        assert!(
            plan.fused_conv_count() * 2 > convs,
            "expected most of {convs} convs fused, got {}",
            plan.fused_conv_count()
        );
        // 1×1 projections dominate ResNet50; the im2col skip must be live.
        assert!(plan.steps.iter().any(|s| matches!(s, Step::FusedConv { im2col_skip: true, .. })));
    }

    #[test]
    fn depthwise_and_se_stay_on_the_interpreter_path() {
        let net = zoo::mobilenet_v3_supernet();
        let sn = net.materialize("max", &net.max_config()).unwrap();
        let g = build_ir(&net, &sn).unwrap();
        let mut norm = g.clone();
        sushi_ir::normalize(&mut norm).unwrap();
        let plan = Plan::lower(&norm).unwrap();
        assert!(plan.steps.iter().any(|s| matches!(s, Step::SqueezeExcite { .. })));
        // Depthwise spatial convs keep the direct path (groups > 1).
        assert!(plan.steps.iter().any(|s| matches!(s, Step::Conv { .. })));
        assert!(plan.fused_conv_count() > 0);
    }

    /// Install-time determinism: building + normalizing + lowering the same
    /// SubNet twice yields identical plans (the CI `ir-smoke` contract).
    #[test]
    fn lowering_is_deterministic() {
        for net in nets() {
            let sn = net.materialize("max", &net.max_config()).unwrap();
            let a = build_plan(&net, &sn).unwrap();
            let b = build_plan(&net, &sn).unwrap();
            assert_eq!(a, b, "{}: nondeterministic lowering", net.name);
        }
    }
}
