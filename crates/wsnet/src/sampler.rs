//! Deterministic random SubNet-configuration sampling.
//!
//! Used to build the SubGraph candidate set `S` of SushiAbs (§3.2) — the
//! exponentially large space of cached SubGraphs (`≫ 10¹⁹`) is reduced to a
//! tractable sample — and by the design-space-exploration sweeps.

use sushi_tensor::DetRng;

use crate::arch::SuperNet;
use crate::subnet::{SubNet, SubNetConfig};

/// Uniform sampler over a SuperNet's elastic configuration space.
#[derive(Debug)]
pub struct ConfigSampler<'a> {
    net: &'a SuperNet,
    rng: DetRng,
}

impl<'a> ConfigSampler<'a> {
    /// Creates a sampler with a deterministic seed.
    #[must_use]
    pub fn new(net: &'a SuperNet, seed: u64) -> Self {
        Self { net, rng: DetRng::new(seed) }
    }

    /// Samples one configuration uniformly over each elastic dimension.
    pub fn sample_config(&mut self) -> SubNetConfig {
        let s = self.net.stages.len();
        let e = &self.net.elastic;
        let depths = (0..s).map(|_| *self.rng.choose(&e.depth_choices)).collect();
        let expands = (0..s).map(|_| *self.rng.choose(&e.expand_choices)).collect();
        let mut cfg = SubNetConfig::new(depths, expands);
        if !e.kernel_choices.is_empty() {
            cfg = cfg.with_kernels((0..s).map(|_| *self.rng.choose(&e.kernel_choices)).collect());
        }
        if !e.width_choices.is_empty() {
            cfg = cfg.with_width(*self.rng.choose(&e.width_choices));
        }
        cfg
    }

    /// Samples `n` materialized SubNets named `"rand-0"`, `"rand-1"`, ….
    ///
    /// # Panics
    /// Panics if a sampled config fails validation — this indicates an
    /// inconsistent elastic space and is a programming error.
    pub fn sample_subnets(&mut self, n: usize) -> Vec<SubNet> {
        (0..n)
            .map(|i| {
                let cfg = self.sample_config();
                self.net
                    .materialize(format!("rand-{i}"), &cfg)
                    .expect("sampled config must be valid")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn sampled_configs_are_valid() {
        let net = zoo::toy_supernet();
        let mut s = ConfigSampler::new(&net, 1);
        for _ in 0..50 {
            let cfg = s.sample_config();
            assert!(net.validate_config(&cfg).is_ok());
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let net = zoo::toy_supernet();
        let a: Vec<_> = ConfigSampler::new(&net, 7).sample_subnets(5);
        let b: Vec<_> = ConfigSampler::new(&net, 7).sample_subnets(5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let net = zoo::toy_supernet();
        let a = ConfigSampler::new(&net, 1).sample_subnets(8);
        let b = ConfigSampler::new(&net, 2).sample_subnets(8);
        assert_ne!(a, b);
    }

    #[test]
    fn sampled_subnets_are_subgraphs_of_supernet() {
        let net = zoo::toy_supernet();
        let full = net.full_graph();
        for sn in ConfigSampler::new(&net, 3).sample_subnets(20) {
            assert!(sn.graph.is_subset_of(&full), "{} escapes the SuperNet", sn.name);
        }
    }

    #[test]
    fn sampler_eventually_varies_depth() {
        let net = zoo::toy_supernet();
        let mut s = ConfigSampler::new(&net, 11);
        let depths: std::collections::HashSet<usize> =
            (0..40).map(|_| s.sample_config().depths[0]).collect();
        assert!(depths.len() > 1, "sampler stuck on one depth");
    }
}
