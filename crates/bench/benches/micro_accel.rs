//! Microbenchmarks of the SushiAccel simulator's hot paths: per-layer
//! timing, whole-query serving, cache installation, and the functional
//! int8 DPE convolution.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sushi_accel::config::zcu104;
use sushi_accel::dpe::DpeArray;
use sushi_accel::exec::Accelerator;
use sushi_accel::timing::layer_timing;
use sushi_tensor::ops::conv::Conv2dParams;
use sushi_tensor::{DetRng, KernelPolicy, QuantParams, Shape4, Tensor};
use sushi_wsnet::layer::LayerSlice;
use sushi_wsnet::zoo;

fn bench_layer_timing(c: &mut Criterion) {
    let cfg = zcu104();
    let net = zoo::resnet50_supernet();
    let sn = zoo::paper_subnets(&net).remove(3);
    let (layer, slice) = net
        .layers
        .iter()
        .zip(sn.graph.slices())
        .find(|(l, s)| !s.is_empty() && l.in_h == 14)
        .map(|(l, s)| (l.clone(), *s))
        .expect("mid-network layer");
    let cached = LayerSlice::new(slice.kernels / 2, slice.channels, slice.kernel_size);
    c.bench_function("layer_timing_single_conv", |b| {
        b.iter(|| {
            layer_timing(black_box(&cfg), black_box(&layer), black_box(&slice), black_box(&cached))
        })
    });
}

fn bench_serve_query(c: &mut Criterion) {
    let net = zoo::resnet50_supernet();
    let picks = zoo::paper_subnets(&net);
    let mut accel = Accelerator::new(zcu104());
    accel.install_cache(&net, net.shared_subgraph(&picks));
    let _ = accel.serve(&net, &picks[0]); // absorb reload
    c.bench_function("serve_resnet50_query_timing_model", |b| {
        b.iter(|| accel.serve(black_box(&net), black_box(&picks[3])))
    });
}

fn bench_install_cache(c: &mut Criterion) {
    let net = zoo::mobilenet_v3_supernet();
    let picks = zoo::paper_subnets(&net);
    let shared = net.shared_subgraph(&picks);
    c.bench_function("install_cache_with_budget_fitting", |b| {
        b.iter(|| {
            let mut accel = Accelerator::new(zcu104());
            accel.install_cache(black_box(&net), black_box(shared.clone()));
        })
    });
}

fn bench_dpe_functional_conv(c: &mut Criterion) {
    let mut rng = DetRng::new(1);
    let ishape = Shape4::new(1, 32, 14, 14);
    let wshape = Shape4::new(32, 32, 3, 3);
    let x =
        Tensor::from_vec(ishape, (0..ishape.volume()).map(|_| rng.next_i8()).collect()).unwrap();
    let w =
        Tensor::from_vec(wshape, (0..wshape.volume()).map(|_| rng.next_i8()).collect()).unwrap();
    let q = QuantParams::new(0.02, 3);
    let params = Conv2dParams::new(3, 3).with_padding(1);
    // Same DPE geometry, three host-simulation kernel policies: the
    // naive-vs-gemm spread is the win `KernelPolicy::Auto` locks in.
    for (name, policy) in [
        ("naive", KernelPolicy::Naive),
        ("gemm", KernelPolicy::Im2colGemm),
        ("auto", KernelPolicy::Auto),
    ] {
        let arr = DpeArray::new(16, 18).with_policy(policy);
        c.bench_function(&format!("dpe_int8_conv_32x32x14x14_{name}"), |b| {
            b.iter(|| arr.conv2d_i8(black_box(&x), q, black_box(&w), q, None, q, &params).unwrap())
        });
    }
}

criterion_group!(
    benches,
    bench_layer_timing,
    bench_serve_query,
    bench_install_cache,
    bench_dpe_functional_conv
);
criterion_main!(benches);
