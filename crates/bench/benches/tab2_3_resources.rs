//! Criterion bench regenerating Tables 2–4 (resources, buffer split,
//! reuse matrix) — see DESIGN.md's experiment index.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use sushi_bench::report_once;

static PRINTED_2: Once = Once::new();
static PRINTED_3: Once = Once::new();
static PRINTED_4: Once = Once::new();

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab2_3_4");
    g.sample_size(20);
    g.bench_function("tab2_regenerate", |b| b.iter(|| report_once("tab2", &PRINTED_2)));
    g.bench_function("tab3_regenerate", |b| b.iter(|| report_once("tab3", &PRINTED_3)));
    g.bench_function("tab4_regenerate", |b| b.iter(|| report_once("tab4", &PRINTED_4)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
