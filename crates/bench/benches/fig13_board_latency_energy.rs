//! Criterion bench regenerating the paper's Fig. 13a (board latency) and
//! Fig. 13b (data-access energy) — see DESIGN.md's experiment index.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use sushi_bench::report_once;

static PRINTED_A: Once = Once::new();
static PRINTED_B: Once = Once::new();

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("fig13a_regenerate", |b| b.iter(|| report_once("fig13a", &PRINTED_A)));
    g.bench_function("fig13b_regenerate", |b| b.iter(|| report_once("fig13b", &PRINTED_B)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
