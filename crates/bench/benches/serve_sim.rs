//! Wall-clock throughput of the event-driven serving simulator.
//!
//! The simulated *metrics* are gated deterministically by `serve_bench` /
//! `BENCH_serve.json`; this target tracks how fast the simulator itself
//! chews through traffic (queries simulated per second of host time),
//! which is what bounds large-scale scenario sweeps.
//!
//! Set `SUSHI_BENCH_QUICK=1` (CI's bench-smoke job) to shrink streams.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sushi_core::experiments::ExpOptions;
use sushi_core::serving::{run_scenario, ServePreset};

fn quick() -> bool {
    std::env::var("SUSHI_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn opts() -> ExpOptions {
    let mut o = if quick() { ExpOptions::quick() } else { ExpOptions::default() };
    if quick() {
        o.queries = 60;
    }
    o
}

fn bench_presets(c: &mut Criterion) {
    let opts = opts();
    let mut group = c.benchmark_group("serve_sim");
    for preset in [ServePreset::Steady, ServePreset::Burst] {
        group.bench_function(preset.name(), |b| {
            b.iter(|| {
                let result = run_scenario(black_box(preset), &opts).expect("preset scenario");
                black_box(result.served.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_presets);
criterion_main!(benches);
