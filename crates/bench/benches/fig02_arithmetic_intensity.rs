//! Criterion bench regenerating the paper's `fig2` (see DESIGN.md index).

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use sushi_bench::report_once;

static PRINTED: Once = Once::new();

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("regenerate", |b| b.iter(|| report_once("fig2", &PRINTED)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
