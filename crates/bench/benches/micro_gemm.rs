//! Microbenchmarks of the sushi-tensor kernel backend: raw GEMM kernels
//! (f32 and zero-point-aware i8→i32) and the naive-vs-im2col+GEMM
//! convolution comparison that motivates `KernelPolicy::Auto`.
//!
//! Set `SUSHI_BENCH_QUICK=1` (CI's bench-smoke job) to shrink problem sizes
//! so the whole target finishes in seconds.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sushi_tensor::ops::conv::{conv2d_f32_with, conv2d_i8_with, Conv2dParams};
use sushi_tensor::ops::gemm::{gemm_f32, gemm_i8_i32};
use sushi_tensor::{DetRng, KernelPolicy, QuantParams, Shape4, Tensor};

fn quick() -> bool {
    std::env::var("SUSHI_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn bench_gemm_f32(c: &mut Criterion) {
    let dim = if quick() { 96 } else { 256 };
    let mut rng = DetRng::new(1);
    let a: Vec<f32> = (0..dim * dim).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
    let b: Vec<f32> = (0..dim * dim).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
    let mut out = vec![0.0f32; dim * dim];
    c.bench_function(&format!("gemm_f32_{dim}x{dim}x{dim}"), |bch| {
        bch.iter(|| {
            out.fill(0.0);
            gemm_f32(dim, dim, dim, black_box(&a), black_box(&b), &mut out).unwrap();
            black_box(out[0])
        })
    });
}

fn bench_gemm_i8(c: &mut Criterion) {
    let dim = if quick() { 96 } else { 256 };
    let mut rng = DetRng::new(2);
    let a: Vec<i8> = (0..dim * dim).map(|_| rng.next_i8()).collect();
    let b: Vec<i8> = (0..dim * dim).map(|_| rng.next_i8()).collect();
    let mut out = vec![0i32; dim * dim];
    c.bench_function(&format!("gemm_i8_i32_{dim}x{dim}x{dim}"), |bch| {
        bch.iter(|| {
            out.fill(0);
            gemm_i8_i32(dim, dim, dim, black_box(&a), 3, black_box(&b), -7, &mut out).unwrap();
            black_box(out[0])
        })
    });
}

fn bench_conv_backends(c: &mut Criterion) {
    let (ch, hw) = if quick() { (16, 14) } else { (64, 28) };
    let ishape = Shape4::new(1, ch, hw, hw);
    let wshape = Shape4::new(ch, ch, 3, 3);
    let mut rng = DetRng::new(3);
    let xf = Tensor::from_vec(
        ishape,
        (0..ishape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect(),
    )
    .unwrap();
    let wf = Tensor::from_vec(
        wshape,
        (0..wshape.volume()).map(|_| rng.uniform_f32(-0.5, 0.5)).collect(),
    )
    .unwrap();
    let xi =
        Tensor::from_vec(ishape, (0..ishape.volume()).map(|_| rng.next_i8()).collect()).unwrap();
    let wi =
        Tensor::from_vec(wshape, (0..wshape.volume()).map(|_| rng.next_i8()).collect()).unwrap();
    let q = QuantParams::new(0.02, 3);
    let params = Conv2dParams::new(3, 3).with_padding(1);

    let mut group = c.benchmark_group(&format!("conv2d_{ch}x{ch}x{hw}x{hw}_3x3"));
    for (name, policy) in [("naive", KernelPolicy::Naive), ("gemm", KernelPolicy::Im2colGemm)] {
        group.bench_function(BenchmarkId::new("f32", name), |bch| {
            bch.iter(|| conv2d_f32_with(black_box(&xf), &wf, None, &params, policy).unwrap())
        });
        group.bench_function(BenchmarkId::new("i8", name), |bch| {
            bch.iter(|| {
                conv2d_i8_with(black_box(&xi), q, &wi, q, None, q, &params, policy).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm_f32, bench_gemm_i8, bench_conv_backends);
criterion_main!(benches);
