//! Microbenchmarks of SushiSched's critical-path operations — the paper's
//! Table 6 concern: scheduler work must stay far below inference latency.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sushi_accel::config::zcu104;
use sushi_core::variants::build_table;
use sushi_sched::{CacheSelection, Policy, Query, Scheduler};
use sushi_wsnet::{zoo, NetVector};

fn bench_table_lookup(c: &mut Criterion) {
    let net = zoo::resnet50_supernet();
    let picks = zoo::paper_subnets(&net);
    let table = build_table(&net, &picks, &zcu104(), 100, 7);
    let mut g = c.benchmark_group("table6_lookup");
    for cols in [10usize, 50, 100] {
        let t = table.with_columns(cols);
        g.bench_with_input(BenchmarkId::new("select_strict_accuracy", cols), &t, |b, t| {
            b.iter(|| t.select(Policy::StrictAccuracy, black_box(0.78), black_box(10.0), 1))
        });
        let avg = NetVector::encode(&picks[2].graph);
        g.bench_with_input(BenchmarkId::new("closest_column_scan", cols), &t, |b, t| {
            b.iter(|| t.closest_column(black_box(&avg)))
        });
    }
    g.finish();
}

fn bench_scheduler_decide(c: &mut Criterion) {
    let net = zoo::mobilenet_v3_supernet();
    let picks = zoo::paper_subnets(&net);
    let table = build_table(&net, &picks, &zcu104(), 16, 7);
    let mut sched =
        Scheduler::new(table, Policy::StrictAccuracy, CacheSelection::MinDistanceToAvg, 10);
    let mut i = 0u64;
    c.bench_function("scheduler_decide_per_query", |b| {
        b.iter(|| {
            i += 1;
            sched.decide(black_box(&Query::new(i, 0.77, 10.0)))
        })
    });
}

fn bench_table_build(c: &mut Criterion) {
    let net = zoo::mobilenet_v3_supernet();
    let picks = zoo::paper_subnets(&net);
    let cfg = zcu104();
    let mut g = c.benchmark_group("table_build");
    g.sample_size(10);
    g.bench_function("build_7rows_x_16cols", |b| {
        b.iter(|| build_table(black_box(&net), black_box(&picks), &cfg, 16, 7))
    });
    g.finish();
}

criterion_group!(benches, bench_table_lookup, bench_scheduler_decide, bench_table_build);
criterion_main!(benches);
