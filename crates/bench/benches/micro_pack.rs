//! Microbenchmarks of the packed-GEMM building blocks: operand-packing
//! throughput and microkernel arithmetic rate at representative OFA layer
//! shapes, plus the prepacked-vs-cold GEMM comparison that motivates
//! pack-once-per-install.
//!
//! Shapes mirror real OFA-ResNet50 conv-as-GEMM problems (`m` = kernels,
//! `k` = C·R·S, `n` = OH·OW). Set `SUSHI_BENCH_QUICK=1` (CI's bench-smoke
//! job) to shrink problem sizes so the whole target finishes in seconds.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sushi_tensor::ops::gemm::{gemm_i8_i32, gemm_i8_packed, gemm_i8_packed_pairs};
use sushi_tensor::ops::pack::{
    pack_a_i8_into, pack_a_i8_pairs_into, pack_b_i8_into, pack_b_i8_pairs_into, packed_a_len,
    packed_a_pairs_len, packed_b_len, packed_b_pairs_len,
};
use sushi_tensor::DetRng;

fn quick() -> bool {
    std::env::var("SUSHI_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Representative OFA-ResNet50 conv-as-GEMM shapes: (label, m, k, n).
fn shapes() -> Vec<(&'static str, usize, usize, usize)> {
    if quick() {
        vec![("stage2_3x3_quick", 32, 288, 196)]
    } else {
        vec![
            // stage-2 3×3: 128 kernels over 128·3·3 at 28².
            ("stage2_3x3", 128, 1152, 784),
            // stage-4 1×1 expand: 512 kernels over 1024 channels at 7².
            ("stage4_1x1", 512, 1024, 49),
            // stem-adjacent 3×3 with a wide patch matrix.
            ("stage1_3x3", 64, 576, 3136),
        ]
    }
}

fn bench_pack_throughput(c: &mut Criterion) {
    let mut rng = DetRng::new(11);
    let mut group = c.benchmark_group("pack");
    for (label, m, k, n) in shapes() {
        let a: Vec<i8> = (0..m * k).map(|_| rng.next_i8()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| rng.next_i8()).collect();
        let mut pa = vec![0i16; packed_a_len(m, k)];
        let mut pb = vec![0i16; packed_b_len(k, n)];
        // Weight-side pack: paid once per SubGraph install.
        group.bench_function(&*format!("a_{label}_{m}x{k}"), |bch| {
            bch.iter(|| {
                pack_a_i8_into(&mut pa, black_box(&a), 3, m, k).unwrap();
                black_box(pa[0])
            })
        });
        // Patch-side pack: paid per query, so its throughput bounds the
        // packed path's fixed per-call cost.
        group.bench_function(&*format!("b_{label}_{k}x{n}"), |bch| {
            bch.iter(|| {
                pack_b_i8_into(&mut pb, black_box(&b), -7, k, n).unwrap();
                black_box(pb[0])
            })
        });
    }
    group.finish();
}

fn bench_microkernel_rate(c: &mut Criterion) {
    let mut rng = DetRng::new(12);
    let mut group = c.benchmark_group("microkernel");
    for (label, m, k, n) in shapes() {
        let a: Vec<i8> = (0..m * k).map(|_| rng.next_i8()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| rng.next_i8()).collect();
        let mut pa = vec![0i16; packed_a_len(m, k)];
        let mut pb = vec![0i16; packed_b_len(k, n)];
        pack_a_i8_into(&mut pa, &a, 3, m, k).unwrap();
        pack_b_i8_into(&mut pb, &b, -7, k, n).unwrap();
        let mut acc = vec![0i32; m * n];
        let gflop = 2.0 * (m * k * n) as f64 / 1e9;
        // Pre-packed sweep: pure microkernel arithmetic (the per-query
        // steady state once weights are install-packed). The printed mean
        // time per iteration × this constant gives GFLOP/s:
        println!("microkernel/prepacked_{label}: {gflop:.3} GFLOP per iteration");
        group.bench_function(&*format!("prepacked_{label}_{m}x{k}x{n}"), |bch| {
            bch.iter(|| {
                acc.fill(0);
                gemm_i8_packed(m, k, n, black_box(&pa), black_box(&pb), &mut acc).unwrap();
                black_box(acc[0])
            })
        });
        // K-pair (`pmaddwd`) sweep: the fused datapath's microkernel.
        let mut pap = vec![0i16; packed_a_pairs_len(m, k)];
        let mut pbp = vec![0i16; packed_b_pairs_len(k, n)];
        pack_a_i8_pairs_into(&mut pap, &a, 3, m, k).unwrap();
        pack_b_i8_pairs_into(&mut pbp, &b, -7, k, n).unwrap();
        group.bench_function(&*format!("pairs_{label}_{m}x{k}x{n}"), |bch| {
            bch.iter(|| {
                acc.fill(0);
                gemm_i8_packed_pairs(m, k, n, black_box(&pap), black_box(&pbp), &mut acc).unwrap();
                black_box(acc[0])
            })
        });
        // Cold path: packs both operands per call (the no-cache fallback).
        group.bench_function(&*format!("coldpack_{label}_{m}x{k}x{n}"), |bch| {
            bch.iter(|| {
                acc.fill(0);
                gemm_i8_i32(m, k, n, black_box(&a), 3, black_box(&b), -7, &mut acc).unwrap();
                black_box(acc[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pack_throughput, bench_microkernel_rate);
criterion_main!(benches);
