//! Criterion bench regenerating Figs. 17–18 (temporal analysis of the
//! SubGraph caching window) — see DESIGN.md's experiment index.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use sushi_bench::report_once;

static PRINTED_17: Once = Once::new();
static PRINTED_18: Once = Once::new();

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig17_18");
    g.sample_size(10);
    g.bench_function("fig17_regenerate", |b| b.iter(|| report_once("fig17", &PRINTED_17)));
    g.bench_function("fig18_regenerate", |b| b.iter(|| report_once("fig18", &PRINTED_18)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
