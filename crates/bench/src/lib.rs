//! Shared helpers for the SUSHI criterion benches.
//!
//! Each bench target corresponds to one table or figure of the paper
//! (see `DESIGN.md`'s experiment index). On startup a bench prints the
//! regenerated rows once — the same series the paper reports — and then
//! times the regeneration itself so performance regressions in the
//! simulator/scheduler surface in CI.

use std::sync::Once;

use sushi_core::experiments::{run, ExpOptions};
use sushi_core::report::ExpReport;

/// Benchmark-scale experiment options (reduced streams).
#[must_use]
pub fn quick_opts() -> ExpOptions {
    ExpOptions::quick()
}

/// Runs experiment `id` at bench scale, printing its report exactly once
/// per process so `cargo bench` output contains the regenerated rows.
///
/// # Panics
/// Panics if `id` is unknown.
pub fn report_once(id: &str, printer: &Once) -> ExpReport {
    let report = run(id, &quick_opts()).unwrap_or_else(|| panic!("unknown experiment id {id}"));
    printer.call_once(|| {
        println!("\n{}", report.render());
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_once_returns_requested_experiment() {
        let once = Once::new();
        let r = report_once("tab4", &once);
        assert_eq!(r.id, "tab4");
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn report_once_rejects_unknown_id() {
        let once = Once::new();
        let _ = report_once("nope", &once);
    }
}
