//! The typed op-graph: nodes, dtype/shape facts on every edge, validation.
//!
//! A [`Graph`] is a small DAG describing one SubNet's forward pass in the
//! quantized serving domain. Node inputs always point at *earlier* nodes
//! (append order is topological order — rewrites only splice consumers onto
//! earlier producers), so inference and lowering are single forward sweeps.
//!
//! Every node has an inferred [`Fact`] — a [`Shape4`] plus a [`DType`] —
//! computed by [`Graph::infer`], which doubles as structural validation:
//! channel counts, accumulator/int8 domain transitions, pooling geometry
//! and residual shape agreement are all checked there, once, instead of
//! erroring mid-forward at serving time.

use sushi_tensor::ops::activation::Activation;
use sushi_tensor::ops::conv::Conv2dParams;
use sushi_tensor::shape::conv_out_dim;
use sushi_tensor::{PackLayout, Shape4};

use crate::error::IrError;

/// Index of a node within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Element type carried on an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// Quantized activations (network-wide activation quantization).
    I8,
    /// Raw convolution accumulators (pre-requantization).
    I32,
    /// Dequantized values (logits, or pre-quantization inputs).
    F32,
}

/// The inferred type fact for one node's output edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fact {
    /// NCHW shape of the value.
    pub shape: Shape4,
    /// Element type of the value.
    pub dtype: DType,
}

/// Folded batch-norm parameters riding on a conv's epilogue: channel `c`
/// rescales the requantization by `scale[c]` and shifts by `offset[c]` in
/// *real (dequantized) units*. Lowering converts the shift to output-quantum
/// units (divide by the output scale) when it builds the per-channel
/// `sushi_tensor::Epilogue`.
#[derive(Debug, Clone, PartialEq)]
pub struct BnFold {
    /// Per-channel multiplier on the accumulator scale.
    pub scale: Vec<f32>,
    /// Per-channel additive shift in real (dequantized) units.
    pub offset: Vec<f32>,
}

/// What has been fused into a [`Op::Conv`] node's writeback so far.
///
/// A freshly built conv has everything unfused (`Default`): bias add,
/// requantization and activation are separate downstream nodes. The rewrite
/// passes fold them in one by one; lowering then bakes the final spec into a
/// `sushi_tensor::Epilogue` per cache install.
#[derive(Debug, Clone, PartialEq)]
pub struct EpilogueSpec {
    /// The layer's i32 bias is added to the accumulator.
    pub bias: bool,
    /// The accumulator is requantized to the activation quantization at
    /// writeback (the conv's output dtype becomes [`DType::I8`]).
    pub requant: bool,
    /// Folded batch-norm rescale/shift (per-channel requantization).
    pub bn: Option<BnFold>,
    /// Activation applied to the requantized output.
    pub act: Activation,
    /// Weight pack layout the lowered step will use. [`PackLayout::KPair`]
    /// selects the fused `pmaddwd` datapath.
    pub layout: PackLayout,
    /// The patch matrix equals the input slice (1×1/stride-1/unpadded dense
    /// conv), so the fused step skips im2col entirely.
    pub im2col_skip: bool,
}

impl Default for EpilogueSpec {
    fn default() -> Self {
        Self {
            bias: false,
            requant: false,
            bn: None,
            act: Activation::None,
            layout: PackLayout::Panel,
            im2col_skip: false,
        }
    }
}

/// One operation of the serving graph.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// The network input: quantized i8 activations.
    Input,
    /// Quantized convolution over SuperNet layer `layer`, producing i32
    /// accumulators (or i8, once requantization is fused — see
    /// [`EpilogueSpec`]).
    Conv {
        /// Index into the SuperNet's flattened layer list.
        layer: usize,
        /// Conv hyper-parameters the SubNet slice resolves to.
        params: Conv2dParams,
        /// Active output channels (the slice's kernel count).
        out_channels: usize,
        /// Fused writeback state.
        epilogue: EpilogueSpec,
    },
    /// Adds SuperNet layer `layer`'s i32 bias vector to the accumulators.
    Bias {
        /// Index into the SuperNet's flattened layer list.
        layer: usize,
        /// Bias length (must match the producing conv's output channels).
        channels: usize,
    },
    /// Per-channel affine in the dequantized domain:
    /// `y = scale[c]·x + offset[c]` (batch-norm at inference time).
    BatchNorm {
        /// Per-channel multiplier.
        scale: Vec<f32>,
        /// Per-channel shift, in real (dequantized) units.
        offset: Vec<f32>,
    },
    /// Requantizes i32 accumulators to i8 under the network's activation
    /// quantization.
    Requant,
    /// Int8 activation (exact ReLU; h-family via dequant∘act∘requant).
    Act(Activation),
    /// Saturating residual add of two equal-scale i8 tensors, with an
    /// optionally fused post-activation.
    Add {
        /// Activation applied to the sum ([`Activation::None`] until the
        /// fuse-activation rewrite runs).
        act: Activation,
    },
    /// Squeeze-excite gating (pooled 1×1 reduce → 1×1 expand → channel
    /// rescale), kept opaque: `reduce`/`expand` are SuperNet layer indices.
    SqueezeExcite {
        /// SE reduce layer index.
        reduce: usize,
        /// SE expand layer index.
        expand: usize,
    },
    /// Int8 max-pool.
    MaxPool {
        /// Square window size.
        window: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on all sides.
        padding: usize,
    },
    /// Global average pool to `(N, C, 1, 1)` (dequant → mean → requant).
    GlobalAvgPool,
    /// Fully-connected classifier (unused by the conv-headed zoo families;
    /// part of the node model for completeness).
    Linear {
        /// Output feature count.
        out_features: usize,
    },
    /// f32 → i8 under the network's activation quantization.
    Quantize,
    /// i8 → f32 under the network's activation quantization.
    Dequantize,
    /// The graph result: dequantized logits.
    Output,
}

/// A node: an [`Op`] plus its input edges. Dead nodes (removed by a rewrite
/// or DCE) stay in place as tombstones so [`NodeId`]s remain stable.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operation.
    pub op: Op,
    /// Producer nodes, in operand order.
    pub inputs: Vec<NodeId>,
    /// Tombstone flag; dead nodes are skipped by inference and lowering.
    pub dead: bool,
}

/// A typed, validated op-graph for one SubNet forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    nodes: Vec<Node>,
    input_shape: Shape4,
    output: Option<NodeId>,
}

impl Graph {
    /// Creates a graph whose node 0 is [`Op::Input`] with `input_shape`.
    #[must_use]
    pub fn new(input_shape: Shape4) -> Self {
        Self {
            nodes: vec![Node { op: Op::Input, inputs: Vec::new(), dead: false }],
            input_shape,
            output: None,
        }
    }

    /// The input node (always id 0).
    #[must_use]
    pub fn input(&self) -> NodeId {
        NodeId(0)
    }

    /// The declared input shape.
    #[must_use]
    pub fn input_shape(&self) -> Shape4 {
        self.input_shape
    }

    /// Appends a node and returns its id. Inputs must refer to existing
    /// earlier nodes (append order is topological order).
    pub fn push(&mut self, op: Op, inputs: &[NodeId]) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { op, inputs: inputs.to_vec(), dead: false });
        id
    }

    /// Declares `id` as the graph output.
    pub fn set_output(&mut self, id: NodeId) {
        self.output = Some(id);
    }

    /// The declared output node.
    #[must_use]
    pub fn output(&self) -> Option<NodeId> {
        self.output
    }

    /// The node behind `id` (including tombstones).
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Number of node slots (including tombstones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes (never true: node 0 is the input).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of live nodes.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.dead).count()
    }

    /// Ids of live nodes, in topological (append) order.
    pub fn live_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().enumerate().filter(|(_, n)| !n.dead).map(|(i, _)| NodeId(i))
    }

    /// Live consumers of `id`, in topological order.
    #[must_use]
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.dead && n.inputs.contains(&id))
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    pub(crate) fn set_output_raw(&mut self, id: Option<NodeId>) {
        self.output = id;
    }

    /// Infers the output [`Fact`] of every live node, validating the graph
    /// in the process. Dead slots get `None`.
    ///
    /// # Errors
    /// Returns [`IrError::Validation`] on any dtype/shape/channel-count
    /// violation, or when an input edge points at a dead or later node.
    pub fn infer(&self) -> Result<Vec<Option<Fact>>, IrError> {
        let mut facts: Vec<Option<Fact>> = vec![None; self.nodes.len()];
        for (idx, node) in self.nodes.iter().enumerate() {
            if node.dead {
                continue;
            }
            let err = |what: &'static str| IrError::Validation { node: idx, what };
            let mut ins = Vec::with_capacity(node.inputs.len());
            for &NodeId(i) in &node.inputs {
                if i >= idx {
                    return Err(err("input edge must point at an earlier node"));
                }
                ins.push(facts[i].ok_or(err("input edge points at a dead node"))?);
            }
            let arity = |n: usize| if ins.len() == n { Ok(()) } else { Err(err("wrong arity")) };
            let fact = match &node.op {
                Op::Input => {
                    arity(0)?;
                    Fact { shape: self.input_shape, dtype: DType::I8 }
                }
                Op::Conv { params, out_channels, epilogue, .. } => {
                    arity(1)?;
                    let x = ins[0];
                    if x.dtype != DType::I8 {
                        return Err(err("conv input must be i8"));
                    }
                    if params.groups == 0 || !x.shape.c.is_multiple_of(params.groups) {
                        return Err(err("conv channels not divisible by groups"));
                    }
                    if !out_channels.is_multiple_of(params.groups) {
                        return Err(err("conv kernels not divisible by groups"));
                    }
                    if let Some(bn) = &epilogue.bn {
                        if bn.scale.len() != *out_channels || bn.offset.len() != *out_channels {
                            return Err(err("folded bn length must match out channels"));
                        }
                    }
                    let oh =
                        conv_out_dim(x.shape.h, params.kernel_h, params.stride, params.padding)
                            .filter(|&d| d > 0)
                            .ok_or(err("conv output height is empty"))?;
                    let ow =
                        conv_out_dim(x.shape.w, params.kernel_w, params.stride, params.padding)
                            .filter(|&d| d > 0)
                            .ok_or(err("conv output width is empty"))?;
                    Fact {
                        shape: Shape4::new(x.shape.n, *out_channels, oh, ow),
                        dtype: if epilogue.requant { DType::I8 } else { DType::I32 },
                    }
                }
                Op::Bias { channels, .. } => {
                    arity(1)?;
                    let x = ins[0];
                    if x.dtype != DType::I32 {
                        return Err(err("bias applies to i32 accumulators"));
                    }
                    if x.shape.c != *channels {
                        return Err(err("bias length must match channels"));
                    }
                    x
                }
                Op::BatchNorm { scale, offset } => {
                    arity(1)?;
                    let x = ins[0];
                    if x.dtype != DType::I8 {
                        return Err(err("batch-norm applies to requantized i8"));
                    }
                    if scale.len() != x.shape.c || offset.len() != x.shape.c {
                        return Err(err("batch-norm length must match channels"));
                    }
                    x
                }
                Op::Requant => {
                    arity(1)?;
                    let x = ins[0];
                    if x.dtype != DType::I32 {
                        return Err(err("requant applies to i32 accumulators"));
                    }
                    Fact { dtype: DType::I8, ..x }
                }
                Op::Act(_) => {
                    arity(1)?;
                    if ins[0].dtype != DType::I8 {
                        return Err(err("activation applies to i8"));
                    }
                    ins[0]
                }
                Op::Add { .. } => {
                    arity(2)?;
                    if ins[0].dtype != DType::I8 || ins[1].dtype != DType::I8 {
                        return Err(err("residual add applies to i8"));
                    }
                    if ins[0].shape != ins[1].shape {
                        return Err(err("residual add shapes must agree"));
                    }
                    ins[0]
                }
                Op::SqueezeExcite { .. } => {
                    arity(1)?;
                    if ins[0].dtype != DType::I8 {
                        return Err(err("squeeze-excite applies to i8"));
                    }
                    ins[0]
                }
                Op::MaxPool { window, stride, padding } => {
                    arity(1)?;
                    let x = ins[0];
                    if x.dtype != DType::I8 {
                        return Err(err("max-pool applies to i8"));
                    }
                    let oh = conv_out_dim(x.shape.h, *window, *stride, *padding)
                        .filter(|&d| d > 0)
                        .ok_or(err("max-pool output height is empty"))?;
                    let ow = conv_out_dim(x.shape.w, *window, *stride, *padding)
                        .filter(|&d| d > 0)
                        .ok_or(err("max-pool output width is empty"))?;
                    Fact { shape: Shape4::new(x.shape.n, x.shape.c, oh, ow), dtype: DType::I8 }
                }
                Op::GlobalAvgPool => {
                    arity(1)?;
                    let x = ins[0];
                    if x.dtype != DType::I8 {
                        return Err(err("global-avg-pool applies to i8"));
                    }
                    Fact { shape: Shape4::new(x.shape.n, x.shape.c, 1, 1), dtype: DType::I8 }
                }
                Op::Linear { out_features } => {
                    arity(1)?;
                    let x = ins[0];
                    if x.dtype != DType::I8 {
                        return Err(err("linear applies to i8"));
                    }
                    if *out_features == 0 {
                        return Err(err("linear needs nonzero out features"));
                    }
                    Fact { shape: Shape4::new(x.shape.n, *out_features, 1, 1), dtype: DType::I8 }
                }
                Op::Quantize => {
                    arity(1)?;
                    if ins[0].dtype != DType::F32 {
                        return Err(err("quantize applies to f32"));
                    }
                    Fact { dtype: DType::I8, ..ins[0] }
                }
                Op::Dequantize => {
                    arity(1)?;
                    if ins[0].dtype != DType::I8 {
                        return Err(err("dequantize applies to i8"));
                    }
                    Fact { dtype: DType::F32, ..ins[0] }
                }
                Op::Output => {
                    arity(1)?;
                    if ins[0].dtype != DType::I8 {
                        return Err(err("output expects i8 activations to dequantize"));
                    }
                    Fact { dtype: DType::F32, ..ins[0] }
                }
            };
            facts[idx] = Some(fact);
        }
        if let Some(NodeId(o)) = self.output {
            if facts.get(o).copied().flatten().is_none() {
                return Err(IrError::Validation { node: o, what: "output node is dead" });
            }
        }
        Ok(facts)
    }

    /// Validates the graph (see [`Graph::infer`]) and checks an output is
    /// declared.
    ///
    /// # Errors
    /// Returns an error when validation fails or no output is set.
    pub fn validate(&self) -> Result<(), IrError> {
        if self.output.is_none() {
            return Err(IrError::NoOutput);
        }
        self.infer().map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_op(layer: usize, k: usize, out_channels: usize) -> Op {
        Op::Conv {
            layer,
            params: Conv2dParams::new(k, k).with_padding(k / 2),
            out_channels,
            epilogue: EpilogueSpec::default(),
        }
    }

    #[test]
    fn infers_conv_chain_facts() {
        let mut g = Graph::new(Shape4::new(1, 3, 8, 8));
        let c = g.push(conv_op(0, 3, 16), &[g.input()]);
        let b = g.push(Op::Bias { layer: 0, channels: 16 }, &[c]);
        let r = g.push(Op::Requant, &[b]);
        let a = g.push(Op::Act(Activation::Relu), &[r]);
        let o = g.push(Op::Output, &[a]);
        g.set_output(o);
        let facts = g.infer().unwrap();
        assert_eq!(
            facts[c.0].unwrap(),
            Fact { shape: Shape4::new(1, 16, 8, 8), dtype: DType::I32 }
        );
        assert_eq!(facts[r.0].unwrap().dtype, DType::I8);
        assert_eq!(facts[o.0].unwrap().dtype, DType::F32);
        g.validate().unwrap();
    }

    #[test]
    fn rejects_domain_violations() {
        // Activation directly on accumulators.
        let mut g = Graph::new(Shape4::new(1, 3, 8, 8));
        let c = g.push(conv_op(0, 3, 4), &[g.input()]);
        let a = g.push(Op::Act(Activation::Relu), &[c]);
        g.set_output(a);
        assert!(matches!(g.validate(), Err(IrError::Validation { .. })));

        // Bias channel mismatch.
        let mut g = Graph::new(Shape4::new(1, 3, 8, 8));
        let c = g.push(conv_op(0, 3, 4), &[g.input()]);
        let b = g.push(Op::Bias { layer: 0, channels: 5 }, &[c]);
        g.set_output(b);
        assert!(matches!(g.validate(), Err(IrError::Validation { .. })));

        // Residual add across different shapes.
        let mut g = Graph::new(Shape4::new(1, 3, 8, 8));
        let c1 = g.push(conv_op(0, 3, 4), &[g.input()]);
        let r1 = g.push(Op::Requant, &[c1]);
        let c2 = g.push(conv_op(1, 3, 6), &[g.input()]);
        let r2 = g.push(Op::Requant, &[c2]);
        let s = g.push(Op::Add { act: Activation::None }, &[r1, r2]);
        g.set_output(s);
        assert!(matches!(g.validate(), Err(IrError::Validation { .. })));
    }

    #[test]
    fn rejects_missing_output_and_empty_conv() {
        let g = Graph::new(Shape4::new(1, 3, 8, 8));
        assert!(matches!(g.validate(), Err(IrError::NoOutput)));

        let mut g = Graph::new(Shape4::new(1, 3, 2, 2));
        let c = g.push(
            Op::Conv {
                layer: 0,
                params: Conv2dParams::new(5, 5),
                out_channels: 4,
                epilogue: EpilogueSpec::default(),
            },
            &[g.input()],
        );
        g.set_output(c);
        assert!(matches!(g.validate(), Err(IrError::Validation { .. })));
    }

    #[test]
    fn pool_and_head_shapes_flow_through() {
        let mut g = Graph::new(Shape4::new(2, 3, 9, 9));
        let c = g.push(conv_op(0, 3, 8), &[g.input()]);
        let r = g.push(Op::Requant, &[c]);
        let mp = g.push(Op::MaxPool { window: 3, stride: 2, padding: 1 }, &[r]);
        let gp = g.push(Op::GlobalAvgPool, &[mp]);
        let o = g.push(Op::Output, &[gp]);
        g.set_output(o);
        let facts = g.infer().unwrap();
        assert_eq!(facts[mp.0].unwrap().shape, Shape4::new(2, 8, 5, 5));
        assert_eq!(facts[gp.0].unwrap().shape, Shape4::new(2, 8, 1, 1));
    }

    #[test]
    fn consumers_and_live_ids_skip_tombstones() {
        let mut g = Graph::new(Shape4::new(1, 3, 8, 8));
        let c = g.push(conv_op(0, 3, 4), &[g.input()]);
        let r = g.push(Op::Requant, &[c]);
        assert_eq!(g.consumers(c), vec![r]);
        g.node_mut(r).dead = true;
        assert!(g.consumers(c).is_empty());
        assert_eq!(g.live_count(), 2);
    }
}
