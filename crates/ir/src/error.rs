//! Errors raised by graph validation, rewriting and lowering.

use std::fmt;

/// Error type for the IR layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A node failed dtype/shape validation.
    Validation {
        /// Offending node index.
        node: usize,
        /// What was violated.
        what: &'static str,
    },
    /// The graph has no declared output node.
    NoOutput,
    /// Lowering met a node the rewrite passes should have eliminated.
    NotNormalized {
        /// Offending node index.
        node: usize,
        /// What remained unfused.
        what: &'static str,
    },
    /// The rewrite engine exceeded its iteration budget without reaching a
    /// fixpoint (a rewrite keeps producing new matches — a rewrite bug).
    NoFixpoint {
        /// The rewrite that was still firing.
        rewrite: &'static str,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Validation { node, what } => write!(f, "ir validation: node {node}: {what}"),
            Self::NoOutput => write!(f, "ir validation: graph has no output node"),
            Self::NotNormalized { node, what } => {
                write!(f, "ir lowering: node {node} not normalized: {what}")
            }
            Self::NoFixpoint { rewrite } => {
                write!(f, "ir rewriting: no fixpoint (rewrite `{rewrite}` kept firing)")
            }
        }
    }
}

impl std::error::Error for IrError {}
