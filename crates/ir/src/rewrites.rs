//! The standard rewrite catalog.
//!
//! Six rewrites normalize a freshly built SubNet graph into the fused
//! serving form:
//!
//! 1. [`FuseBias`] — `Conv → Bias` becomes a conv with `epilogue.bias`.
//! 2. [`FuseRequant`] — `Conv → Requant` becomes a conv that requantizes at
//!    writeback (its output dtype flips to i8).
//! 3. [`FoldBatchNorm`] — `Conv(requant) → BatchNorm` folds the per-channel
//!    affine into the conv's requantization ([`BnFold`]). The fold skips the
//!    intermediate i8 rounding the two-stage form would perform, so it is
//!    *more* accurate than running the ops separately (within one output
//!    quantum of it — pinned by a test below), not bit-equal.
//! 4. [`FuseActivation`] — `Conv(requant) → Act` and `Add → Act` absorb the
//!    activation into the producer's epilogue.
//! 5. [`Dce`] — tombstones live non-output nodes nothing consumes.
//! 6. [`AnnotateLayout`] — marks dense convs whose `Auto` kernel policy
//!    resolves to the GEMM backend with [`PackLayout::KPair`], selecting the
//!    fused `pmaddwd` datapath at lowering, and flags 1×1/stride-1/unpadded
//!    convs to skip im2col.
//!
//! [`run_to_fixpoint`] applies them in deterministic order; the confluence
//! test below pins that any *presentation order* of this catalog reaches the
//! same normal form.

use sushi_tensor::ops::activation::Activation;
use sushi_tensor::ops::gemm::{ConvBackend, KernelPolicy};
use sushi_tensor::PackLayout;

use crate::error::IrError;
use crate::graph::{BnFold, Graph, NodeId, Op};
use crate::rewrite::{run_to_fixpoint, Patch, Rewrite, RewriteLog};

/// Returns `id`'s producing conv when `id` is that conv's *sole* live
/// consumer — the precondition for folding anything into the conv's
/// epilogue (another consumer would observe the pre-fold value).
fn sole_conv_producer(g: &Graph, id: NodeId) -> Option<NodeId> {
    let node = g.node(id);
    let src = *node.inputs.first()?;
    match g.node(src).op {
        Op::Conv { .. } if g.consumers(src) == [id] => Some(src),
        _ => None,
    }
}

/// Folds a `Bias` node into its producing conv's epilogue.
pub struct FuseBias;

impl Rewrite for FuseBias {
    fn name(&self) -> &'static str {
        "fuse-bias"
    }

    fn match_at(&self, g: &Graph, id: NodeId) -> Option<Patch> {
        let Op::Bias { layer: bias_layer, .. } = g.node(id).op else {
            return None;
        };
        let conv = sole_conv_producer(g, id)?;
        let Op::Conv { layer, ref params, out_channels, ref epilogue } = g.node(conv).op else {
            return None;
        };
        // The bias must belong to the same SuperNet layer as the weights,
        // and nothing may already be fused past the accumulator stage.
        if layer != bias_layer || epilogue.bias || epilogue.requant {
            return None;
        }
        let mut spec = epilogue.clone();
        spec.bias = true;
        let mut p = Patch::new(self.name());
        p.set_op.push((conv, Op::Conv { layer, params: *params, out_channels, epilogue: spec }));
        p.redirect.push((id, conv));
        p.delete.push(id);
        Some(p)
    }
}

/// Folds a `Requant` node into its producing conv's writeback.
pub struct FuseRequant;

impl Rewrite for FuseRequant {
    fn name(&self) -> &'static str {
        "fuse-requant"
    }

    fn match_at(&self, g: &Graph, id: NodeId) -> Option<Patch> {
        if !matches!(g.node(id).op, Op::Requant) {
            return None;
        }
        let conv = sole_conv_producer(g, id)?;
        let Op::Conv { layer, ref params, out_channels, ref epilogue } = g.node(conv).op else {
            return None;
        };
        if epilogue.requant {
            return None;
        }
        let mut spec = epilogue.clone();
        spec.requant = true;
        let mut p = Patch::new(self.name());
        p.set_op.push((conv, Op::Conv { layer, params: *params, out_channels, epilogue: spec }));
        p.redirect.push((id, conv));
        p.delete.push(id);
        Some(p)
    }
}

/// Folds a `BatchNorm` node into its producing conv's per-channel
/// requantization.
pub struct FoldBatchNorm;

impl Rewrite for FoldBatchNorm {
    fn name(&self) -> &'static str {
        "fold-batch-norm"
    }

    fn match_at(&self, g: &Graph, id: NodeId) -> Option<Patch> {
        let Op::BatchNorm { ref scale, ref offset } = g.node(id).op else {
            return None;
        };
        let (scale, offset) = (scale.clone(), offset.clone());
        let conv = sole_conv_producer(g, id)?;
        let Op::Conv { layer, ref params, out_channels, ref epilogue } = g.node(conv).op else {
            return None;
        };
        // Only fold into a requantizing conv that has no activation fused
        // yet: the epilogue applies activation *after* the per-channel
        // rescale, so an already-fused activation would end up on the wrong
        // side of the batch-norm.
        if !epilogue.requant || epilogue.bn.is_some() || epilogue.act != Activation::None {
            return None;
        }
        let mut spec = epilogue.clone();
        spec.bn = Some(BnFold { scale, offset });
        let mut p = Patch::new(self.name());
        p.set_op.push((conv, Op::Conv { layer, params: *params, out_channels, epilogue: spec }));
        p.redirect.push((id, conv));
        p.delete.push(id);
        Some(p)
    }
}

/// Absorbs an `Act` node into its producer: a requantizing conv's epilogue,
/// or a residual `Add`'s fused post-activation.
pub struct FuseActivation;

impl Rewrite for FuseActivation {
    fn name(&self) -> &'static str {
        "fuse-activation"
    }

    fn match_at(&self, g: &Graph, id: NodeId) -> Option<Patch> {
        let Op::Act(act) = g.node(id).op else {
            return None;
        };
        let src = *g.node(id).inputs.first()?;
        if g.consumers(src) != [id] {
            return None;
        }
        let mut p = Patch::new(self.name());
        match g.node(src).op {
            Op::Conv { layer, ref params, out_channels, ref epilogue }
                if epilogue.requant && epilogue.act == Activation::None =>
            {
                let mut spec = epilogue.clone();
                spec.act = act;
                p.set_op
                    .push((src, Op::Conv { layer, params: *params, out_channels, epilogue: spec }));
            }
            Op::Add { act: Activation::None } => {
                p.set_op.push((src, Op::Add { act }));
            }
            _ => return None,
        }
        p.redirect.push((id, src));
        p.delete.push(id);
        Some(p)
    }
}

/// Dead-node elimination: tombstones live nodes (other than the input and
/// the declared output) that no live node consumes.
pub struct Dce;

impl Rewrite for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn match_at(&self, g: &Graph, id: NodeId) -> Option<Patch> {
        if matches!(g.node(id).op, Op::Input) || g.output() == Some(id) {
            return None;
        }
        if !g.consumers(id).is_empty() {
            return None;
        }
        let mut p = Patch::new(self.name());
        p.delete.push(id);
        Some(p)
    }
}

/// Annotates dense, requantizing convs whose `Auto` kernel policy resolves
/// to the GEMM backend with the k-pair pack layout (the fused `pmaddwd`
/// datapath), and flags the 1×1/stride-1/unpadded case to skip im2col.
///
/// The MAC count is computed for batch 1, so the annotation depends only on
/// the SubNet, never on the serving batch size.
pub struct AnnotateLayout;

impl Rewrite for AnnotateLayout {
    fn name(&self) -> &'static str {
        "annotate-layout"
    }

    fn match_at(&self, g: &Graph, id: NodeId) -> Option<Patch> {
        let Op::Conv { layer, ref params, out_channels, ref epilogue } = g.node(id).op else {
            return None;
        };
        if !epilogue.requant || epilogue.layout != PackLayout::Panel || params.groups != 1 {
            return None;
        }
        let facts = g.infer().ok()?;
        let x = facts[g.node(id).inputs.first()?.0]?;
        let y = facts[id.0]?;
        let macs =
            out_channels * x.shape.c * params.kernel_h * params.kernel_w * y.shape.h * y.shape.w;
        if KernelPolicy::Auto.resolve(macs, false) != ConvBackend::Im2colGemm {
            return None;
        }
        let mut spec = epilogue.clone();
        spec.layout = PackLayout::KPair;
        spec.im2col_skip = params.kernel_h == 1
            && params.kernel_w == 1
            && params.stride == 1
            && params.padding == 0;
        let mut p = Patch::new(self.name());
        p.set_op.push((id, Op::Conv { layer, params: *params, out_channels, epilogue: spec }));
        Some(p)
    }
}

/// The standard catalog, in canonical application order.
#[must_use]
pub fn standard_rewrites() -> Vec<&'static dyn Rewrite> {
    vec![&FuseBias, &FuseRequant, &FoldBatchNorm, &FuseActivation, &Dce, &AnnotateLayout]
}

/// Normalizes `g` with the standard catalog: runs [`standard_rewrites`] to
/// fixpoint.
///
/// # Errors
/// Propagates [`run_to_fixpoint`] errors (validation breakage or a missing
/// fixpoint — both rewrite bugs, surfaced at install time).
pub fn normalize(g: &mut Graph) -> Result<RewriteLog, IrError> {
    run_to_fixpoint(g, &standard_rewrites())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EpilogueSpec;
    use sushi_tensor::ops::conv::Conv2dParams;
    use sushi_tensor::Shape4;

    fn conv(layer: usize, k: usize, stride: usize, out_channels: usize) -> Op {
        Op::Conv {
            layer,
            params: Conv2dParams::new(k, k).with_stride(stride).with_padding(k / 2),
            out_channels,
            epilogue: EpilogueSpec::default(),
        }
    }

    /// Builds `Conv → Bias → Requant → [BatchNorm] → Act → Output`.
    fn chain(with_bn: bool) -> Graph {
        let mut g = Graph::new(Shape4::new(1, 8, 16, 16));
        let c = g.push(conv(3, 3, 1, 16), &[g.input()]);
        let b = g.push(Op::Bias { layer: 3, channels: 16 }, &[c]);
        let r = g.push(Op::Requant, &[b]);
        let pre_act = if with_bn {
            g.push(Op::BatchNorm { scale: vec![1.25; 16], offset: vec![-0.5; 16] }, &[r])
        } else {
            r
        };
        let a = g.push(Op::Act(Activation::Relu), &[pre_act]);
        let o = g.push(Op::Output, &[a]);
        g.set_output(o);
        g
    }

    fn the_conv(g: &Graph) -> &EpilogueSpec {
        for id in g.live_ids() {
            if let Op::Conv { epilogue, .. } = &g.node(id).op {
                return epilogue;
            }
        }
        panic!("no live conv");
    }

    #[test]
    fn chain_normalizes_to_single_fused_conv() {
        let mut g = chain(false);
        let log = normalize(&mut g).unwrap();
        g.validate().unwrap();
        // Conv + Input + Output survive; Bias/Requant/Act folded away.
        assert_eq!(g.live_count(), 3);
        let spec = the_conv(&g);
        assert!(spec.bias && spec.requant);
        assert_eq!(spec.act, Activation::Relu);
        // 16·8·3·3·16·16 = 294912 MACs ≫ threshold → k-pair layout.
        assert_eq!(spec.layout, PackLayout::KPair);
        assert!(!spec.im2col_skip);
        assert_eq!(
            log.applied,
            vec!["fuse-bias", "fuse-requant", "fuse-activation", "annotate-layout"]
        );
    }

    #[test]
    fn batch_norm_folds_into_per_channel_requant() {
        let mut g = chain(true);
        normalize(&mut g).unwrap();
        assert_eq!(g.live_count(), 3);
        let spec = the_conv(&g);
        let bn = spec.bn.as_ref().expect("bn folded");
        assert_eq!(bn.scale, vec![1.25; 16]);
        assert_eq!(bn.offset, vec![-0.5; 16]);
        assert_eq!(spec.act, Activation::Relu);
    }

    #[test]
    fn tiny_and_grouped_convs_keep_the_panel_layout() {
        // 4·8·1·1·4·4 = 512 MACs < threshold → stays Panel, direct loops.
        let mut g = Graph::new(Shape4::new(1, 8, 4, 4));
        let c = g.push(
            Op::Conv {
                layer: 0,
                params: Conv2dParams::new(1, 1),
                out_channels: 4,
                epilogue: EpilogueSpec::default(),
            },
            &[g.input()],
        );
        let r = g.push(Op::Requant, &[c]);
        let o = g.push(Op::Output, &[r]);
        g.set_output(o);
        normalize(&mut g).unwrap();
        assert_eq!(the_conv(&g).layout, PackLayout::Panel);

        // Depthwise (groups == channels) is never annotated.
        let mut g = Graph::new(Shape4::new(1, 32, 32, 32));
        let c = g.push(
            Op::Conv {
                layer: 0,
                params: Conv2dParams::new(3, 3).with_padding(1).with_groups(32),
                out_channels: 32,
                epilogue: EpilogueSpec::default(),
            },
            &[g.input()],
        );
        let r = g.push(Op::Requant, &[c]);
        let o = g.push(Op::Output, &[r]);
        g.set_output(o);
        normalize(&mut g).unwrap();
        assert_eq!(the_conv(&g).layout, PackLayout::Panel);
    }

    #[test]
    fn big_1x1_conv_gets_im2col_skip() {
        let mut g = Graph::new(Shape4::new(1, 64, 14, 14));
        let c = g.push(
            Op::Conv {
                layer: 0,
                params: Conv2dParams::new(1, 1),
                out_channels: 64,
                epilogue: EpilogueSpec::default(),
            },
            &[g.input()],
        );
        let r = g.push(Op::Requant, &[c]);
        let o = g.push(Op::Output, &[r]);
        g.set_output(o);
        normalize(&mut g).unwrap();
        let spec = the_conv(&g);
        assert_eq!(spec.layout, PackLayout::KPair);
        assert!(spec.im2col_skip);
    }

    #[test]
    fn dce_removes_orphan_chains() {
        let mut g = chain(false);
        // An orphan conv chain nothing consumes.
        let oc = g.push(conv(9, 1, 1, 4), &[g.input()]);
        let or = g.push(Op::Requant, &[oc]);
        let live_before = g.live_count();
        let log = normalize(&mut g).unwrap();
        // The chain may partially fuse before DCE reaches it; both nodes
        // must be gone either way.
        assert!(g.node(oc).dead && g.node(or).dead);
        assert!(log.applied.contains(&"dce"));
        assert!(g.live_count() < live_before);
        g.validate().unwrap();
    }

    /// A residual where the first conv's *requantized output* has two
    /// consumers: the requant still fuses (the fold only needs the conv's
    /// accumulator to be single-consumer), both consumers then read the
    /// conv, and the `Add` absorbs its post-activation.
    #[test]
    fn residual_fuses_through_and_add_absorbs_act() {
        let mut g = Graph::new(Shape4::new(1, 8, 16, 16));
        let c1 = g.push(conv(0, 3, 1, 8), &[g.input()]);
        let r1 = g.push(Op::Requant, &[c1]);
        let c2 = g.push(conv(1, 3, 1, 8), &[r1]);
        let r2 = g.push(Op::Requant, &[c2]);
        // Residual: r1 feeds both the second conv and the add.
        let s = g.push(Op::Add { act: Activation::None }, &[r2, r1]);
        let a = g.push(Op::Act(Activation::Relu), &[s]);
        let o = g.push(Op::Output, &[a]);
        g.set_output(o);
        normalize(&mut g).unwrap();
        g.validate().unwrap();
        assert!(g.node(r1).dead);
        let Op::Conv { epilogue, .. } = &g.node(c1).op else { panic!("conv") };
        // Requant fused; the activation belongs to the add, not the conv.
        assert!(epilogue.requant);
        assert_eq!(epilogue.act, Activation::None);
        assert_eq!(g.consumers(c1).len(), 2);
        let add =
            g.live_ids().find(|&id| matches!(g.node(id).op, Op::Add { .. })).expect("add survives");
        assert!(matches!(g.node(add).op, Op::Add { act: Activation::Relu }));
        assert!(g.node(a).dead);
    }

    /// A conv whose raw accumulators feed two requants keeps both standalone
    /// — folding either would change what the other observes.
    #[test]
    fn shared_accumulator_blocks_requant_fusion() {
        let mut g = Graph::new(Shape4::new(1, 8, 16, 16));
        let c = g.push(conv(0, 3, 1, 8), &[g.input()]);
        let r1 = g.push(Op::Requant, &[c]);
        let r2 = g.push(Op::Requant, &[c]);
        let s = g.push(Op::Add { act: Activation::None }, &[r1, r2]);
        let o = g.push(Op::Output, &[s]);
        g.set_output(o);
        normalize(&mut g).unwrap();
        g.validate().unwrap();
        assert!(!g.node(r1).dead && !g.node(r2).dead);
        let Op::Conv { epilogue, .. } = &g.node(c).op else { panic!("conv") };
        assert!(!epilogue.requant);
    }

    /// Confluence: every presentation order of the catalog reaches the same
    /// normal form (the engine's determinism makes each order reproducible;
    /// this pins that the *result* doesn't depend on the order at all).
    #[test]
    fn catalog_is_confluent_under_reordering() {
        let reference = {
            let mut g = chain(true);
            normalize(&mut g).unwrap();
            g
        };
        let catalog = standard_rewrites();
        let n = catalog.len();
        // All rotations plus a few hand-picked adversarial orders.
        let mut orders: Vec<Vec<usize>> =
            (0..n).map(|r| (0..n).map(|i| (i + r) % n).collect()).collect();
        orders.push(vec![5, 4, 3, 2, 1, 0]); // full reversal
        orders.push(vec![3, 1, 5, 0, 2, 4]); // act/requant before bias
        for order in orders {
            let permuted: Vec<&dyn Rewrite> = order.iter().map(|&i| catalog[i]).collect();
            let mut g = chain(true);
            run_to_fixpoint(&mut g, &permuted).unwrap();
            assert_eq!(g, reference, "order {order:?} reached a different normal form");
        }
    }
}
