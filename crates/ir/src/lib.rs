//! `sushi-ir`: a typed op-graph IR with patch-based rewrites, lowering
//! SubNets onto the fused serving datapath at cache-install time.
//!
//! SUSHI's core bet is that SubGraph-stationary serving lets install-time
//! work amortize across every query that hits the cached SubGraph. This
//! crate is where that install-time work happens for the *compute plan*
//! (the weight bytes are handled by `sushi-accel`'s `SubgraphCache`):
//!
//! 1. **Build** — `sushi-wsnet` translates a SubNet into a [`Graph`]: one
//!    node per op (`Conv`, `Bias`, `Requant`, `Act`, `Add`, …), every edge
//!    carrying an inferred [`Fact`] (NCHW shape + dtype). Validation runs
//!    once here, not per query.
//! 2. **Rewrite** — the standard catalog ([`standard_rewrites`]) runs to
//!    fixpoint under the patch engine ([`run_to_fixpoint`]): bias, requant,
//!    batch-norm and activation fold into conv epilogues, dead nodes are
//!    swept, and dense GEMM-bound convs are annotated with the k-pair pack
//!    layout that selects the fused `pmaddwd` microkernel.
//! 3. **Lower** — [`Plan::lower`] flattens the normal form into a slot
//!    machine ([`Step`] list + lifetime table) that the accelerator executes
//!    per query with zero graph interpretation overhead.
//!
//! Rewrites are deterministic (declaration order, node order, first match
//! wins) and confluent (any catalog order reaches the same normal form) —
//! both pinned by tests, so a cached plan is a pure function of the SubNet.

pub mod error;
pub mod graph;
pub mod plan;
pub mod rewrite;
pub mod rewrites;

pub use error::IrError;
pub use graph::{BnFold, DType, EpilogueSpec, Fact, Graph, Node, NodeId, Op};
pub use plan::{Plan, Step};
pub use rewrite::{apply, run_to_fixpoint, Patch, Rewrite, RewriteLog};
pub use rewrites::{normalize, standard_rewrites};
