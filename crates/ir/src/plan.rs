//! Lowering: a normalized [`Graph`] becomes an executable [`Plan`].
//!
//! A plan is a flat step list over dense value *slots* — the executor keeps
//! a `Vec<Option<Tensor>>` indexed by slot, runs steps in order, and frees
//! each slot after its last read ([`Plan::drop_after`]), matching the
//! sequential runtime's peak-memory behaviour. Lowering happens once per
//! cache install; serving never touches the graph again.
//!
//! Lowering is intentionally dumb: every fusion decision was already made by
//! the rewrite passes, recorded in each conv's
//! [`EpilogueSpec`](crate::graph::EpilogueSpec). A node the rewrites should
//! have eliminated (`Bias`, `Requant`, `BatchNorm`, …) is a hard
//! [`IrError::NotNormalized`] — a rewrite bug surfaces at install time, not
//! as a silently slow or wrong datapath.

use sushi_tensor::ops::activation::Activation;
use sushi_tensor::PackLayout;

use crate::error::IrError;
use crate::graph::{BnFold, Graph, NodeId, Op};

/// One executable step of a lowered plan. `src`/`dst` (and `a`/`b`) are
/// slot indices into the executor's value table.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Unfused conv on the direct/panel path: conv, then cached bias,
    /// requantize, activation — the pre-IR per-layer sequence.
    Conv {
        /// SuperNet layer index (resolves cached weights and conv params).
        layer: usize,
        /// Whether the layer's bias is applied.
        bias: bool,
        /// Post-requantization activation.
        act: Activation,
        /// Input slot.
        src: usize,
        /// Output slot.
        dst: usize,
    },
    /// Fused conv on the k-pair `pmaddwd` path: bias + (per-channel)
    /// requantization + activation applied in the microkernel epilogue.
    FusedConv {
        /// SuperNet layer index (resolves cached weights and conv params).
        layer: usize,
        /// Whether the layer's bias is folded into the epilogue.
        bias: bool,
        /// Activation folded into the epilogue.
        act: Activation,
        /// Folded batch-norm (per-channel requantization), if any.
        bn: Option<BnFold>,
        /// The patch matrix is the input slice itself (1×1/s1/p0 dense).
        im2col_skip: bool,
        /// Input slot.
        src: usize,
        /// Output slot.
        dst: usize,
    },
    /// Standalone int8 activation (kept when fusion was blocked, e.g. a
    /// producer with several consumers).
    Act {
        /// The activation.
        act: Activation,
        /// Input slot.
        src: usize,
        /// Output slot.
        dst: usize,
    },
    /// Saturating residual add with optional fused post-activation.
    Add {
        /// Left operand slot.
        a: usize,
        /// Right operand slot.
        b: usize,
        /// Post-add activation.
        act: Activation,
        /// Output slot.
        dst: usize,
    },
    /// Squeeze-excite gating over the cached SE layer pair.
    SqueezeExcite {
        /// SE reduce layer index.
        reduce: usize,
        /// SE expand layer index.
        expand: usize,
        /// Input slot.
        src: usize,
        /// Output slot.
        dst: usize,
    },
    /// Int8 max-pool.
    MaxPool {
        /// Square window size.
        window: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on all sides.
        padding: usize,
        /// Input slot.
        src: usize,
        /// Output slot.
        dst: usize,
    },
    /// Global average pool to `(N, C, 1, 1)`.
    GlobalAvgPool {
        /// Input slot.
        src: usize,
        /// Output slot.
        dst: usize,
    },
}

impl Step {
    /// Slots this step reads.
    fn reads(&self) -> Vec<usize> {
        match *self {
            Step::Conv { src, .. }
            | Step::FusedConv { src, .. }
            | Step::Act { src, .. }
            | Step::SqueezeExcite { src, .. }
            | Step::MaxPool { src, .. }
            | Step::GlobalAvgPool { src, .. } => vec![src],
            Step::Add { a, b, .. } => vec![a, b],
        }
    }
}

/// An executable lowering of one SubNet graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Steps, in execution order.
    pub steps: Vec<Step>,
    /// `drop_after[i]` lists the slots whose last read is step `i`; the
    /// executor frees them right after running the step.
    pub drop_after: Vec<Vec<usize>>,
    /// Total number of value slots.
    pub slots: usize,
    /// Slot the caller's quantized input is placed in before step 0.
    pub input_slot: usize,
    /// Slot holding the final pre-dequantization activations; the executor
    /// dequantizes it into logits after the last step.
    pub logits_slot: usize,
}

impl Plan {
    /// Lowers a validated, normalized graph.
    ///
    /// # Errors
    /// Returns [`IrError::NoOutput`]/[`IrError::Validation`] for an invalid
    /// graph and [`IrError::NotNormalized`] when a node the standard
    /// rewrites fold away is still present (including a batch-norm folded
    /// into a conv the layout pass kept on the direct path, which cannot
    /// apply per-channel requantization).
    pub fn lower(g: &Graph) -> Result<Self, IrError> {
        let output = g.output().ok_or(IrError::NoOutput)?;
        g.infer()?;

        let mut slot_of: Vec<Option<usize>> = vec![None; g.len()];
        let mut slots = 0usize;
        let mut alloc = |slot_of: &mut Vec<Option<usize>>, id: NodeId| {
            let s = slots;
            slots += 1;
            slot_of[id.0] = Some(s);
            s
        };
        let slot = |slot_of: &[Option<usize>], id: NodeId, what: &'static str| {
            slot_of[id.0].ok_or(IrError::NotNormalized { node: id.0, what })
        };

        let mut steps = Vec::new();
        let mut input_slot = 0usize;
        let mut logits_slot = None;
        for id in g.live_ids() {
            let node = g.node(id);
            let nn = |what: &'static str| IrError::NotNormalized { node: id.0, what };
            match &node.op {
                Op::Input => {
                    input_slot = alloc(&mut slot_of, id);
                }
                Op::Conv { layer, epilogue, .. } => {
                    if !epilogue.requant {
                        return Err(nn("conv without fused requantization"));
                    }
                    let src = slot(&slot_of, node.inputs[0], "conv reads a slotless node")?;
                    let dst = alloc(&mut slot_of, id);
                    if epilogue.layout == PackLayout::KPair {
                        steps.push(Step::FusedConv {
                            layer: *layer,
                            bias: epilogue.bias,
                            act: epilogue.act,
                            bn: epilogue.bn.clone(),
                            im2col_skip: epilogue.im2col_skip,
                            src,
                            dst,
                        });
                    } else {
                        if epilogue.bn.is_some() {
                            return Err(nn("batch-norm folded into a direct-path conv"));
                        }
                        steps.push(Step::Conv {
                            layer: *layer,
                            bias: epilogue.bias,
                            act: epilogue.act,
                            src,
                            dst,
                        });
                    }
                }
                Op::Act(act) => {
                    let src = slot(&slot_of, node.inputs[0], "act reads a slotless node")?;
                    let dst = alloc(&mut slot_of, id);
                    steps.push(Step::Act { act: *act, src, dst });
                }
                Op::Add { act } => {
                    let a = slot(&slot_of, node.inputs[0], "add reads a slotless node")?;
                    let b = slot(&slot_of, node.inputs[1], "add reads a slotless node")?;
                    let dst = alloc(&mut slot_of, id);
                    steps.push(Step::Add { a, b, act: *act, dst });
                }
                Op::SqueezeExcite { reduce, expand } => {
                    let src = slot(&slot_of, node.inputs[0], "se reads a slotless node")?;
                    let dst = alloc(&mut slot_of, id);
                    steps.push(Step::SqueezeExcite { reduce: *reduce, expand: *expand, src, dst });
                }
                Op::MaxPool { window, stride, padding } => {
                    let src = slot(&slot_of, node.inputs[0], "max-pool reads a slotless node")?;
                    let dst = alloc(&mut slot_of, id);
                    steps.push(Step::MaxPool {
                        window: *window,
                        stride: *stride,
                        padding: *padding,
                        src,
                        dst,
                    });
                }
                Op::GlobalAvgPool => {
                    let src = slot(&slot_of, node.inputs[0], "pool reads a slotless node")?;
                    let dst = alloc(&mut slot_of, id);
                    steps.push(Step::GlobalAvgPool { src, dst });
                }
                Op::Output => {
                    if id != output {
                        return Err(nn("stray output node"));
                    }
                    logits_slot =
                        Some(slot(&slot_of, node.inputs[0], "output reads a slotless node")?);
                }
                Op::Bias { .. } => return Err(nn("unfused bias")),
                Op::BatchNorm { .. } => return Err(nn("unfolded batch-norm")),
                Op::Requant => return Err(nn("unfused requantization")),
                Op::Quantize | Op::Dequantize => return Err(nn("explicit (de)quantize node")),
                Op::Linear { .. } => return Err(nn("linear head is not lowerable yet")),
            }
        }
        let logits_slot = logits_slot.ok_or(IrError::NoOutput)?;

        // Last-read analysis: free each slot right after the step that
        // reads it last (the logits slot survives to the end).
        let mut last_read: Vec<Option<usize>> = vec![None; slots];
        for (i, step) in steps.iter().enumerate() {
            for s in step.reads() {
                last_read[s] = Some(i);
            }
        }
        let mut drop_after = vec![Vec::new(); steps.len()];
        for (s, last) in last_read.iter().enumerate() {
            if let Some(i) = *last {
                if s != logits_slot {
                    drop_after[i].push(s);
                }
            }
        }

        Ok(Self { steps, drop_after, slots, input_slot, logits_slot })
    }

    /// Number of convs lowered onto the fused k-pair datapath.
    #[must_use]
    pub fn fused_conv_count(&self) -> usize {
        self.steps.iter().filter(|s| matches!(s, Step::FusedConv { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EpilogueSpec;
    use crate::rewrites::normalize;
    use sushi_tensor::ops::conv::Conv2dParams;
    use sushi_tensor::Shape4;

    fn conv(layer: usize, k: usize, out_channels: usize) -> Op {
        Op::Conv {
            layer,
            params: Conv2dParams::new(k, k).with_padding(k / 2),
            out_channels,
            epilogue: EpilogueSpec::default(),
        }
    }

    #[test]
    fn normalized_chain_lowers_to_one_fused_step() {
        let mut g = Graph::new(Shape4::new(1, 8, 16, 16));
        let c = g.push(conv(3, 3, 16), &[g.input()]);
        let b = g.push(Op::Bias { layer: 3, channels: 16 }, &[c]);
        let r = g.push(Op::Requant, &[b]);
        let a = g.push(Op::Act(sushi_tensor::ops::activation::Activation::Relu), &[r]);
        let o = g.push(Op::Output, &[a]);
        g.set_output(o);
        normalize(&mut g).unwrap();

        let plan = Plan::lower(&g).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.fused_conv_count(), 1);
        assert!(matches!(
            plan.steps[0],
            Step::FusedConv { layer: 3, bias: true, src, dst, .. }
                if src == plan.input_slot && dst == plan.logits_slot
        ));
        // The input slot dies right after the only step.
        assert_eq!(plan.drop_after, vec![vec![plan.input_slot]]);
        assert_eq!(plan.slots, 2);
    }

    #[test]
    fn unnormalized_nodes_are_rejected() {
        let mut g = Graph::new(Shape4::new(1, 8, 16, 16));
        let c = g.push(conv(0, 3, 16), &[g.input()]);
        let r = g.push(Op::Requant, &[c]);
        let o = g.push(Op::Output, &[r]);
        g.set_output(o);
        // Not normalized: the conv still produces raw accumulators (hit
        // first, in topological order) and the requant is standalone.
        assert!(matches!(Plan::lower(&g), Err(IrError::NotNormalized { .. })));
        normalize(&mut g).unwrap();
        assert!(Plan::lower(&g).is_ok());
    }

    #[test]
    fn tiny_conv_lowers_to_direct_step_and_shared_slots_drop_late() {
        use sushi_tensor::ops::activation::Activation;
        // Small shapes (2·2·3·3·4·4 = 576 MACs < 2048) keep every conv
        // below the GEMM threshold → `Conv` steps; the residual makes
        // slot 1 live until the add.
        let mut g = Graph::new(Shape4::new(1, 2, 4, 4));
        let c1 = g.push(conv(0, 3, 2), &[g.input()]);
        let r1 = g.push(Op::Requant, &[c1]);
        let c2 = g.push(conv(1, 3, 2), &[r1]);
        let r2 = g.push(Op::Requant, &[c2]);
        let s = g.push(Op::Add { act: Activation::None }, &[r2, r1]);
        let a = g.push(Op::Act(Activation::Relu), &[s]);
        let o = g.push(Op::Output, &[a]);
        g.set_output(o);
        normalize(&mut g).unwrap();

        let plan = Plan::lower(&g).unwrap();
        assert_eq!(plan.fused_conv_count(), 0);
        let convs = plan.steps.iter().filter(|s| matches!(s, Step::Conv { .. })).count();
        assert_eq!(convs, 2);
        // Steps: conv(0→1), conv(1→2), add(2,1→3 with fused relu).
        assert!(matches!(plan.steps[2], Step::Add { act: Activation::Relu, .. }));
        let Step::Add { a: add_a, b: add_b, dst, .. } = plan.steps[2] else {
            panic!("expected add");
        };
        assert_eq!(dst, plan.logits_slot);
        // Slot 1 (first conv's output) is read by both the second conv and
        // the add, so it drops only after the add.
        assert!(plan.drop_after[2].contains(&add_b) || plan.drop_after[2].contains(&add_a));
        assert!(plan.drop_after[1].is_empty() || !plan.drop_after[1].contains(&1));
    }

    #[test]
    fn output_must_read_a_real_value() {
        let g = Graph::new(Shape4::new(1, 3, 8, 8));
        assert!(matches!(Plan::lower(&g), Err(IrError::NoOutput)));
    }
}
