//! The patch-based rewrite engine.
//!
//! A [`Rewrite`] inspects one node at a time and, when its pattern matches,
//! returns a [`Patch`] — a declarative local edit (set ops, rewire
//! consumers, delete nodes). The engine applies patches one at a time in a
//! deterministic order (rewrites in declaration order, nodes in id order,
//! first match wins) and re-validates the graph after every application, so
//! a buggy rewrite fails loudly at install time instead of corrupting the
//! datapath. [`run_to_fixpoint`] loops until a full sweep produces no patch.
//!
//! Determinism and confluence are pinned by tests: the same graph always
//! normalizes to the same form, *regardless of the order the rewrite list
//! is presented in* (the `rewrites` module's confluence tests permute it).

use crate::error::IrError;
use crate::graph::{Graph, NodeId, Op};

/// A declarative local edit produced by a matched [`Rewrite`].
///
/// Application order within one patch: `set_op`, then `redirect` (every live
/// consumer of `from` reads `to` instead, and the graph output moves too),
/// then `delete` (tombstoning). Redirect targets must be earlier nodes than
/// the consumers they gain, preserving the append-is-topological invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Patch {
    /// Name of the rewrite that produced this patch (for logs/tests).
    pub rewrite: &'static str,
    /// Nodes whose op is replaced.
    pub set_op: Vec<(NodeId, Op)>,
    /// Consumer rewiring: `(from, to)` makes every consumer of `from` (and
    /// the graph output, if it was `from`) point at `to`.
    pub redirect: Vec<(NodeId, NodeId)>,
    /// Nodes to tombstone.
    pub delete: Vec<NodeId>,
}

impl Patch {
    /// An empty patch for `rewrite`.
    #[must_use]
    pub fn new(rewrite: &'static str) -> Self {
        Self { rewrite, set_op: Vec::new(), redirect: Vec::new(), delete: Vec::new() }
    }
}

/// A declared rewrite: a pattern over one anchor node plus the patch that
/// rewrites it.
pub trait Rewrite {
    /// Stable name (shows up in [`RewriteLog`] and errors).
    fn name(&self) -> &'static str;

    /// Tries to match with `id` as the anchor node; returns the patch to
    /// apply on success.
    fn match_at(&self, g: &Graph, id: NodeId) -> Option<Patch>;
}

/// Record of the patches applied by one [`run_to_fixpoint`] run, in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RewriteLog {
    /// Rewrite names, one per applied patch.
    pub applied: Vec<&'static str>,
}

/// Applies `patch` to `g` and re-validates.
///
/// # Errors
/// Returns an error when the patched graph fails validation.
pub fn apply(g: &mut Graph, patch: &Patch) -> Result<(), IrError> {
    for (id, op) in &patch.set_op {
        g.node_mut(*id).op = op.clone();
    }
    for &(from, to) in &patch.redirect {
        for idx in 0..g.len() {
            let node = g.node_mut(NodeId(idx));
            if node.dead {
                continue;
            }
            for input in &mut node.inputs {
                if *input == from {
                    *input = to;
                }
            }
        }
        if g.output() == Some(from) {
            g.set_output_raw(Some(to));
        }
    }
    for &id in &patch.delete {
        g.node_mut(id).dead = true;
    }
    g.infer().map(|_| ())
}

/// Runs `rewrites` to fixpoint in deterministic order: sweep rewrites in
/// declaration order and nodes in id order, apply the first match, restart
/// the sweep; stop when a full sweep matches nothing.
///
/// # Errors
/// Returns an error when an applied patch breaks validation, or when the
/// iteration budget (proportional to graph size) is exhausted — which means
/// some rewrite keeps generating matches and would loop forever.
pub fn run_to_fixpoint(g: &mut Graph, rewrites: &[&dyn Rewrite]) -> Result<RewriteLog, IrError> {
    let mut log = RewriteLog::default();
    // Every rewrite either deletes a node or permanently annotates one, so
    // a generous multiple of |nodes|·|rewrites| bounds any terminating run.
    let budget = g.len() * rewrites.len() * 4 + 16;
    loop {
        let mut matched: Option<Patch> = None;
        'sweep: for rw in rewrites {
            for id in g.live_ids().collect::<Vec<_>>() {
                if let Some(patch) = rw.match_at(g, id) {
                    matched = Some(patch);
                    break 'sweep;
                }
            }
        }
        match matched {
            None => return Ok(log),
            Some(patch) => {
                if log.applied.len() >= budget {
                    return Err(IrError::NoFixpoint { rewrite: patch.rewrite });
                }
                apply(g, &patch)?;
                log.applied.push(patch.rewrite);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EpilogueSpec;
    use sushi_tensor::ops::activation::Activation;
    use sushi_tensor::ops::conv::Conv2dParams;
    use sushi_tensor::Shape4;

    fn chain() -> (Graph, NodeId, NodeId) {
        let mut g = Graph::new(Shape4::new(1, 3, 8, 8));
        let c = g.push(
            Op::Conv {
                layer: 0,
                params: Conv2dParams::new(3, 3).with_padding(1),
                out_channels: 4,
                epilogue: EpilogueSpec { requant: true, ..EpilogueSpec::default() },
            },
            &[g.input()],
        );
        let a = g.push(Op::Act(Activation::Relu), &[c]);
        let o = g.push(Op::Output, &[a]);
        g.set_output(o);
        (g, c, a)
    }

    #[test]
    fn apply_redirects_consumers_and_tombstones() {
        let (mut g, c, a) = chain();
        let mut p = Patch::new("test");
        p.redirect.push((a, c));
        p.delete.push(a);
        apply(&mut g, &p).unwrap();
        assert!(g.node(a).dead);
        let out = g.output().unwrap();
        assert_eq!(g.node(out).inputs, vec![c]);
        g.validate().unwrap();
    }

    #[test]
    fn apply_rejects_validation_breakage() {
        let (mut g, c, _a) = chain();
        // Making the conv produce raw accumulators breaks the Act consumer.
        let mut p = Patch::new("test");
        p.set_op.push((
            c,
            Op::Conv {
                layer: 0,
                params: Conv2dParams::new(3, 3).with_padding(1),
                out_channels: 4,
                epilogue: EpilogueSpec::default(),
            },
        ));
        assert!(matches!(apply(&mut g, &p), Err(IrError::Validation { .. })));
    }

    /// A rewrite that always matches must hit the budget, not hang.
    #[test]
    fn runaway_rewrite_is_caught() {
        struct Runaway;
        impl Rewrite for Runaway {
            fn name(&self) -> &'static str {
                "runaway"
            }
            fn match_at(&self, _g: &Graph, id: NodeId) -> Option<Patch> {
                (id.0 == 0).then(|| Patch::new("runaway"))
            }
        }
        let (mut g, _, _) = chain();
        let err = run_to_fixpoint(&mut g, &[&Runaway]).unwrap_err();
        assert!(matches!(err, IrError::NoFixpoint { rewrite: "runaway" }));
    }
}
