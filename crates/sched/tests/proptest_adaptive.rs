//! Property-based tests for the load-adaptive layer: hysteresis stability,
//! feasibility of shaped selections, and static-equivalence at zero
//! pressure, under arbitrary tables and signal sequences.

use proptest::prelude::*;

use sushi_sched::query::{Policy, Query};
use sushi_sched::scheduler::{CacheSelection, Scheduler};
use sushi_sched::table::{LatencyTable, EMPTY_COLUMN};
use sushi_sched::{AdaptiveOptions, AdaptivePolicy, LoadSignal};
use sushi_wsnet::layer::LayerSlice;
use sushi_wsnet::subnet::SubNetConfig;
use sushi_wsnet::{SubGraph, SubNet};

/// Same synthetic-table shape as `proptest_sched.rs`: `n` rows of
/// increasing size/accuracy, `m` candidate columns, latency falling with
/// vector overlap.
fn make_table(n: usize, m: usize) -> LatencyTable {
    let subnets: Vec<SubNet> = (1..=n)
        .map(|i| SubNet {
            name: format!("sn{i}"),
            config: SubNetConfig::new(vec![1], vec![1.0]),
            graph: SubGraph::new(vec![
                LayerSlice::new(8 * i, 4 * i, 3),
                LayerSlice::new(16 * i, 8 * i, 3),
            ]),
            accuracy: 0.70 + 0.02 * i as f64,
            flops: i as u64 * 1_000_000,
            weight_bytes: i as u64 * 10_000,
        })
        .collect();
    let candidates: Vec<SubGraph> = (1..=m)
        .map(|j| {
            SubGraph::new(vec![LayerSlice::new(8 * j, 4 * j, 3), LayerSlice::new(16 * j, 8 * j, 3)])
        })
        .collect();
    LatencyTable::build(&subnets, candidates, |sn, cached| {
        let base = sn.weight_bytes as f64 / 10_000.0;
        let hit = cached.map_or(0.0, |g| sushi_wsnet::encoding::overlap_ratio(&sn.graph, g));
        base * (1.0 - 0.3 * hit)
    })
}

/// An arbitrary (possibly adversarial) load observation at `now_ms`.
fn signal_at(now_ms: f64, depth: f64, p99_ms: f64, slack_ms: f64, budget_ms: f64) -> LoadSignal {
    LoadSignal {
        now_ms,
        queue_depth: depth,
        queue_capacity: 32,
        p99_ms,
        head_slack_ms: slack_ms,
        head_budget_ms: budget_ms,
        quarantined_frac: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Hysteresis never oscillates within one dwell window: whatever the
    /// signal sequence, two enacted level changes are separated by at
    /// least `dwell_ms`, and every step moves by exactly one level.
    #[test]
    fn level_changes_respect_the_dwell_window(
        n in 2usize..8,
        dwell in 1.0f64..50.0,
        steps in proptest::collection::vec(
            (0.01f64..30.0, 0.0f64..64.0, 0.0f64..200.0, -5.0f64..50.0),
            1..60,
        ),
    ) {
        let t = make_table(n, 3);
        let mut p = AdaptivePolicy::new(
            &t,
            Policy::StrictAccuracy,
            AdaptiveOptions::default().with_dwell_ms(dwell),
        );
        let mut now = 0.0;
        let mut last_change: Option<(f64, usize)> = None;
        for (dt, depth, p99, slack) in steps {
            now += dt;
            let before = p.level();
            let ev = p.observe(&signal_at(now, depth, p99, slack, 20.0));
            if let Some(ev) = ev {
                prop_assert_eq!(ev.level, p.level());
                prop_assert_eq!(
                    ev.level.abs_diff(before), 1,
                    "every enacted change is a single-level step"
                );
                if let Some((at, lvl)) = last_change {
                    prop_assert!(
                        ev.at_ms - at >= dwell,
                        "changes at {at} and {} violate the {dwell} ms dwell", ev.at_ms
                    );
                    // In particular the controller can never flap A→B→A
                    // between adjacent rungs inside one window.
                    prop_assert!(ev.at_ms - at >= dwell || lvl != ev.level);
                }
                last_change = Some((ev.at_ms, ev.level));
            } else {
                prop_assert_eq!(p.level(), before, "no event means the level held");
            }
            prop_assert!(p.level() <= p.max_level());
        }
    }

    /// Whatever the level, the SubNet selected for a shaped query is
    /// feasible: its latency under the *current* cache column fits the cap
    /// rung's cold budget, and shaping never raises either constraint
    /// beyond the query's own ConstraintSpace.
    #[test]
    fn shaped_selection_is_always_feasible(
        n in 2usize..8,
        m in 1usize..5,
        degrades in 0usize..8,
        acc in 0.70f64..0.90,
        lat in 0.5f64..20.0,
        col_pick in 0usize..6,
    ) {
        for policy in [Policy::StrictAccuracy, Policy::StrictLatency] {
            let t = make_table(n, m);
            let col = col_pick % t.num_columns();
            let mut p = AdaptivePolicy::new(&t, policy, AdaptiveOptions::default());
            let red = signal_at(0.0, 64.0, 1e6, -1.0, 1.0);
            for i in 0..degrades {
                let _ = p.observe(&signal_at(i as f64 * p.dwell_ms(), 64.0, red.p99_ms, -1.0, 1.0));
            }
            let q = Query::new(1, acc, lat);
            let shaped = p.shape(&q, &t, col);
            // Shaping only ever tightens the query's own ConstraintSpace.
            prop_assert!(shaped.accuracy_constraint <= q.accuracy_constraint);
            prop_assert!(shaped.latency_constraint_ms <= q.latency_constraint_ms);
            if p.level() > 0 {
                // The cap rung's cold latency is the degradation budget; the
                // row `select` lands on must fit it under the current column.
                let ladder_budget = {
                    let mut colds: Vec<f64> =
                        (0..t.num_rows()).map(|i| t.latency_ms(i, EMPTY_COLUMN)).collect();
                    colds.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    colds[t.num_rows() - 1 - p.level()]
                };
                match policy {
                    Policy::StrictAccuracy => {
                        let row = t.select(policy, shaped.accuracy_constraint, f64::MAX, col);
                        prop_assert!(
                            t.latency_ms(row, col) <= ladder_budget + 1e-12,
                            "row {row} at {} ms exceeds level-{} budget {} ms",
                            t.latency_ms(row, col), p.level(), ladder_budget
                        );
                    }
                    Policy::StrictLatency => {
                        let row = t.select(policy, 0.0, shaped.latency_constraint_ms, col);
                        let any_feasible = (0..t.num_rows())
                            .any(|i| t.latency_ms(i, col) <= shaped.latency_constraint_ms);
                        if any_feasible {
                            prop_assert!(
                                t.latency_ms(row, col) <= shaped.latency_constraint_ms + 1e-12
                            );
                        } else {
                            // The query's own budget was below every row to
                            // begin with: the fastest-row fallback is the
                            // same one the static scheduler takes.
                            let fastest = (0..t.num_rows())
                                .min_by(|&a, &b| {
                                    t.latency_ms(a, col)
                                        .partial_cmp(&t.latency_ms(b, col))
                                        .unwrap()
                                })
                                .unwrap();
                            prop_assert_eq!(row, fastest);
                        }
                    }
                }
            }
        }
    }

    /// Zero pressure means zero interference: a stream decided through an
    /// idle adaptive layer is decision-for-decision identical to the
    /// static scheduler.
    #[test]
    fn zero_pressure_is_decision_identical_to_static(
        q_window in 1usize..5,
        constraints in proptest::collection::vec((0.70f64..0.88, 0.5f64..9.0), 1..40),
    ) {
        for policy in [Policy::StrictAccuracy, Policy::StrictLatency] {
            let t = make_table(5, 4);
            let mut p = AdaptivePolicy::new(&t, policy, AdaptiveOptions::default());
            let mk = || Scheduler::new(
                make_table(5, 4), policy, CacheSelection::MinDistanceToAvg, q_window,
            );
            let (mut adaptive, mut fixed) = (mk(), mk());
            for (i, (a, l)) in constraints.iter().enumerate() {
                let ev = p.observe(&LoadSignal::idle(i as f64 * 100.0));
                prop_assert!(ev.is_none(), "idle signals must never move the level");
                let q = Query::new(i as u64, *a, *l);
                let shaped = p.shape(&q, &t, adaptive.current_cache());
                prop_assert_eq!(shaped, q, "level 0 shaping is the identity");
                prop_assert_eq!(adaptive.decide(&shaped), fixed.decide(&q));
            }
            prop_assert_eq!(p.degrades() + p.upgrades(), 0);
        }
    }

    /// The batch cap is monotone in the level and never sinks below the
    /// configured floor.
    #[test]
    fn batch_cap_is_monotone_and_floored(
        base in 1usize..64,
        min_batch in 1usize..8,
        degrades in 0usize..12,
    ) {
        let t = make_table(4, 2);
        let mut p = AdaptivePolicy::new(
            &t,
            Policy::StrictAccuracy,
            AdaptiveOptions::default().with_min_batch(min_batch),
        );
        let mut prev = p.batch_cap(base);
        prop_assert_eq!(prev, base.max(min_batch));
        for i in 0..degrades {
            let _ = p.observe(&signal_at(i as f64 * p.dwell_ms(), 64.0, 1e6, -1.0, 1.0));
            let cap = p.batch_cap(base);
            prop_assert!(cap <= prev, "cap must shrink (or hold) as the level rises");
            prop_assert!(cap >= min_batch);
            prev = cap;
        }
    }
}
