//! Property-based tests for SushiSched/SushiAbs: feasibility guarantees of
//! Algorithm 1 under arbitrary tables and constraint streams.

use proptest::prelude::*;

use sushi_sched::query::{Policy, Query};
use sushi_sched::scheduler::{CacheSelection, Scheduler};
use sushi_sched::table::{LatencyTable, EMPTY_COLUMN};
use sushi_wsnet::layer::LayerSlice;
use sushi_wsnet::subnet::SubNetConfig;
use sushi_wsnet::{NetVector, SubGraph, SubNet};

/// Builds a synthetic table with `n` rows of increasing size/accuracy and
/// `m` candidate columns; latency falls with vector overlap.
fn make_table(n: usize, m: usize) -> LatencyTable {
    let subnets: Vec<SubNet> = (1..=n)
        .map(|i| SubNet {
            name: format!("sn{i}"),
            config: SubNetConfig::new(vec![1], vec![1.0]),
            graph: SubGraph::new(vec![
                LayerSlice::new(8 * i, 4 * i, 3),
                LayerSlice::new(16 * i, 8 * i, 3),
            ]),
            accuracy: 0.70 + 0.02 * i as f64,
            flops: i as u64 * 1_000_000,
            weight_bytes: i as u64 * 10_000,
        })
        .collect();
    let candidates: Vec<SubGraph> = (1..=m)
        .map(|j| {
            SubGraph::new(vec![LayerSlice::new(8 * j, 4 * j, 3), LayerSlice::new(16 * j, 8 * j, 3)])
        })
        .collect();
    LatencyTable::build(&subnets, candidates, |sn, cached| {
        let base = sn.weight_bytes as f64 / 10_000.0;
        let hit = cached.map_or(0.0, |g| sushi_wsnet::encoding::overlap_ratio(&sn.graph, g));
        base * (1.0 - 0.3 * hit)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Strict-accuracy selection returns a row meeting the constraint
    /// whenever one exists, and the fastest such row under the cache state.
    #[test]
    fn strict_accuracy_selects_fastest_feasible(
        n in 2usize..8,
        m in 1usize..6,
        a_t in 0.70f64..0.90,
        col_pick in 0usize..6,
    ) {
        let t = make_table(n, m);
        let col = col_pick % t.num_columns();
        let row = t.select(Policy::StrictAccuracy, a_t, f64::MAX, col);
        let feasible: Vec<usize> =
            (0..t.num_rows()).filter(|&i| t.row(i).accuracy >= a_t).collect();
        if feasible.is_empty() {
            // Fallback: most accurate row.
            let best = (0..t.num_rows())
                .max_by(|&a, &b| t.row(a).accuracy.partial_cmp(&t.row(b).accuracy).unwrap())
                .unwrap();
            prop_assert_eq!(row, best);
        } else {
            prop_assert!(t.row(row).accuracy >= a_t);
            for i in feasible {
                prop_assert!(t.latency_ms(row, col) <= t.latency_ms(i, col) + 1e-12);
            }
        }
    }

    /// Strict-latency selection never exceeds the constraint when feasible,
    /// and picks the most accurate feasible row.
    #[test]
    fn strict_latency_selects_most_accurate_feasible(
        n in 2usize..8,
        m in 1usize..6,
        l_t in 0.5f64..9.0,
        col_pick in 0usize..6,
    ) {
        let t = make_table(n, m);
        let col = col_pick % t.num_columns();
        let row = t.select(Policy::StrictLatency, 0.0, l_t, col);
        let feasible: Vec<usize> =
            (0..t.num_rows()).filter(|&i| t.latency_ms(i, col) <= l_t).collect();
        if feasible.is_empty() {
            let fastest = (0..t.num_rows())
                .min_by(|&a, &b| t.latency_ms(a, col).partial_cmp(&t.latency_ms(b, col)).unwrap())
                .unwrap();
            prop_assert_eq!(row, fastest);
        } else {
            prop_assert!(t.latency_ms(row, col) <= l_t);
            for i in feasible {
                prop_assert!(t.row(row).accuracy >= t.row(i).accuracy - 1e-12);
            }
        }
    }

    /// `closest_column` is a true argmin over the candidate columns.
    #[test]
    fn closest_column_is_argmin(n in 2usize..6, m in 1usize..8, target in 0usize..8) {
        let t = make_table(n, m);
        let avg = t.row(target % t.num_rows()).vector.clone();
        let best = t.closest_column(&avg);
        prop_assert!(best != EMPTY_COLUMN);
        let d_best = t.column(best).vector.dist_l2(&avg);
        for j in 1..t.num_columns() {
            prop_assert!(d_best <= t.column(j).vector.dist_l2(&avg) + 1e-12);
        }
    }

    /// Scheduler cache updates happen only on Q-boundaries, regardless of
    /// the constraint stream.
    #[test]
    fn cache_updates_on_q_boundaries(
        q in 1usize..7,
        constraints in proptest::collection::vec((0.70f64..0.88, 0.5f64..9.0), 1..40),
    ) {
        let t = make_table(5, 4);
        let mut s = Scheduler::new(t, Policy::StrictAccuracy, CacheSelection::MinDistanceToAvg, q);
        for (i, (a, l)) in constraints.iter().enumerate() {
            let d = s.decide(&Query::new(i as u64, *a, *l));
            if d.cache_update.is_some() {
                prop_assert_eq!((i + 1) % q, 0, "update at non-boundary index {}", i);
            }
        }
    }

    /// Truncating the table to fewer columns never changes row metadata and
    /// preserves the cold column exactly.
    #[test]
    fn column_truncation_is_stable(n in 2usize..6, m in 2usize..8, keep in 0usize..8) {
        let t = make_table(n, m);
        let small = t.with_columns(keep);
        prop_assert_eq!(small.num_rows(), t.num_rows());
        for i in 0..t.num_rows() {
            prop_assert_eq!(small.row(i).accuracy, t.row(i).accuracy);
            prop_assert_eq!(small.latency_ms(i, EMPTY_COLUMN), t.latency_ms(i, EMPTY_COLUMN));
        }
    }

    /// The scheduler is deterministic: identical streams produce identical
    /// decision sequences.
    #[test]
    fn scheduler_is_deterministic(
        q in 1usize..5,
        constraints in proptest::collection::vec((0.70f64..0.88, 0.5f64..9.0), 1..30),
    ) {
        let mk = || Scheduler::new(make_table(4, 3), Policy::StrictLatency, CacheSelection::MinDistanceToAvg, q);
        let (mut s1, mut s2) = (mk(), mk());
        for (i, (a, l)) in constraints.iter().enumerate() {
            let q1 = Query::new(i as u64, *a, *l);
            prop_assert_eq!(s1.decide(&q1), s2.decide(&q1));
        }
    }

    /// AvgNet-driven caching converges: on a constant stream the cache
    /// stabilizes after at most two windows and stops updating.
    #[test]
    fn constant_stream_converges(q in 1usize..6, a_t in 0.70f64..0.88) {
        let t = make_table(5, 5);
        let mut s = Scheduler::new(t, Policy::StrictAccuracy, CacheSelection::MinDistanceToAvg, q);
        let mut updates_after_warmup = 0;
        for i in 0..(q * 6) {
            let d = s.decide(&Query::new(i as u64, a_t, f64::MAX));
            if i >= 2 * q && d.cache_update.is_some() {
                updates_after_warmup += 1;
            }
        }
        prop_assert_eq!(updates_after_warmup, 0);
    }

    /// Vector encodings used by the table agree with re-encoding the graph.
    #[test]
    fn table_vectors_match_graph_encodings(n in 1usize..6, m in 1usize..5) {
        let t = make_table(n, m);
        for j in 0..t.num_columns() {
            let col = t.column(j);
            prop_assert_eq!(col.vector.clone(), NetVector::encode(&col.graph));
        }
    }
}
