//! Property-based tests for the tenant-tiered layer: cross-tier depth
//! ordering, per-tier hysteresis (dwell + single steps), equivalence with
//! the global controller, and zero-pressure identity — under arbitrary
//! tables, shields, and signal sequences.

use proptest::prelude::*;

use sushi_sched::query::{Policy, Query};
use sushi_sched::scheduler::{CacheSelection, Scheduler};
use sushi_sched::table::LatencyTable;
use sushi_sched::{
    AdaptiveOptions, AdaptivePolicy, LoadSignal, PredictorOptions, TenantOptions, TenantPolicy,
    TenantTier, TierSignals,
};
use sushi_wsnet::layer::LayerSlice;
use sushi_wsnet::subnet::SubNetConfig;
use sushi_wsnet::{SubGraph, SubNet};

/// Same synthetic-table shape as `proptest_adaptive.rs`: `n` rows of
/// increasing size/accuracy, `m` candidate columns, latency falling with
/// vector overlap.
fn make_table(n: usize, m: usize) -> LatencyTable {
    let subnets: Vec<SubNet> = (1..=n)
        .map(|i| SubNet {
            name: format!("sn{i}"),
            config: SubNetConfig::new(vec![1], vec![1.0]),
            graph: SubGraph::new(vec![
                LayerSlice::new(8 * i, 4 * i, 3),
                LayerSlice::new(16 * i, 8 * i, 3),
            ]),
            accuracy: 0.70 + 0.02 * i as f64,
            flops: i as u64 * 1_000_000,
            weight_bytes: i as u64 * 10_000,
        })
        .collect();
    let candidates: Vec<SubGraph> = (1..=m)
        .map(|j| {
            SubGraph::new(vec![LayerSlice::new(8 * j, 4 * j, 3), LayerSlice::new(16 * j, 8 * j, 3)])
        })
        .collect();
    LatencyTable::build(&subnets, candidates, |sn, cached| {
        let base = sn.weight_bytes as f64 / 10_000.0;
        let hit = cached.map_or(0.0, |g| sushi_wsnet::encoding::overlap_ratio(&sn.graph, g));
        base * (1.0 - 0.3 * hit)
    })
}

/// An arbitrary (possibly adversarial) load observation at `now_ms`.
fn signal_at(now_ms: f64, depth: f64, p99_ms: f64, slack_ms: f64, budget_ms: f64) -> LoadSignal {
    LoadSignal {
        now_ms,
        queue_depth: depth,
        queue_capacity: 32,
        p99_ms,
        head_slack_ms: slack_ms,
        head_budget_ms: budget_ms,
        quarantined_frac: 0.0,
    }
}

/// One randomized observation: a shared signal plus optional per-tier
/// overrides and an optional best-effort arrival (predictor food).
type Obs = (f64, f64, f64, Option<(f64, f64)>, bool);

fn obs_strategy() -> impl Strategy<Value = Obs> {
    (
        0.01f64..30.0, // dt
        0.0f64..64.0,  // shared depth
        0.0f64..200.0, // shared p99
        0usize..2,     // whether the BE tier override applies
        0.0f64..64.0,  // BE override depth
        0.0f64..200.0, // BE override p99
        0usize..2,     // whether a BE arrival is fed to the predictor
    )
        .prop_map(|(dt, depth, p99, with_be, be_depth, be_p99, arrival)| {
            (dt, depth, p99, (with_be == 1).then_some((be_depth, be_p99)), arrival == 1)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The cross-tier invariant holds after every observation, whatever
    /// the signals, shield, or predictor activity: a latency-critical
    /// ladder is never deeper than standard, and standard never deeper
    /// than best-effort.
    #[test]
    fn lc_is_never_deeper_than_be_under_any_signal(
        n in 2usize..8,
        shield in 1.0f64..4.0,
        with_predictor in (0usize..2).prop_map(|b| b == 1),
        steps in proptest::collection::vec(obs_strategy(), 1..60),
    ) {
        let t = make_table(n, 3);
        let opts = TenantOptions::default()
            .with_shield(shield)
            .with_predictor(with_predictor.then(PredictorOptions::default));
        let mut p = TenantPolicy::new(&t, Policy::StrictAccuracy, opts);
        let mut now = 0.0;
        for (dt, depth, p99, be_override, arrival) in steps {
            now += dt;
            if arrival {
                p.observe_arrival(TenantTier::BestEffort, now);
            }
            let mut signals = TierSignals::uniform(signal_at(now, depth, p99, -1.0, 20.0));
            if let Some((be_depth, be_p99)) = be_override {
                signals = signals
                    .with_tier(TenantTier::BestEffort, signal_at(now, be_depth, be_p99, -1.0, 20.0));
            }
            let _ = p.observe(&signals);
            prop_assert!(
                p.level(TenantTier::LatencyCritical) <= p.level(TenantTier::Standard),
                "LC {} deeper than Std {}",
                p.level(TenantTier::LatencyCritical), p.level(TenantTier::Standard)
            );
            prop_assert!(
                p.level(TenantTier::Standard) <= p.level(TenantTier::BestEffort),
                "Std {} deeper than BE {}",
                p.level(TenantTier::Standard), p.level(TenantTier::BestEffort)
            );
        }
    }

    /// Each tier's ladder keeps the global controller's contract under the
    /// tenant coupling: every enacted change is a single-level step, and
    /// two changes of the *same tier* are separated by at least the dwell.
    #[test]
    fn per_tier_changes_are_single_steps_inside_the_dwell(
        n in 2usize..8,
        dwell in 1.0f64..50.0,
        shield in 1.0f64..4.0,
        steps in proptest::collection::vec(obs_strategy(), 1..60),
    ) {
        let t = make_table(n, 3);
        let opts = TenantOptions::default()
            .with_base(AdaptiveOptions::default().with_dwell_ms(dwell))
            .with_shield(shield);
        let mut p = TenantPolicy::new(&t, Policy::StrictAccuracy, opts);
        let mut now = 0.0;
        let mut last_change: [Option<f64>; 3] = [None; 3];
        let mut levels = [0usize; 3];
        for (dt, depth, p99, be_override, _) in steps {
            now += dt;
            let mut signals = TierSignals::uniform(signal_at(now, depth, p99, -1.0, 20.0));
            if let Some((be_depth, be_p99)) = be_override {
                signals = signals
                    .with_tier(TenantTier::BestEffort, signal_at(now, be_depth, be_p99, -1.0, 20.0));
            }
            for te in p.observe(&signals) {
                let i = te.tier.index();
                prop_assert_eq!(te.event.level, p.level(te.tier));
                prop_assert_eq!(
                    te.event.level.abs_diff(levels[i]), 1,
                    "tier {} stepped more than one level", te.tier.name()
                );
                if let Some(at) = last_change[i] {
                    prop_assert!(
                        te.event.at_ms - at >= dwell,
                        "tier {} changed at {at} and {} inside the {dwell} ms dwell",
                        te.tier.name(), te.event.at_ms
                    );
                }
                last_change[i] = Some(te.event.at_ms);
                levels[i] = te.event.level;
            }
            for tier in TenantTier::ALL {
                prop_assert_eq!(levels[tier.index()], p.level(tier), "event stream lost a change");
            }
        }
    }

    /// With shield 1 (every tier shares the global thresholds), no
    /// predictor, and no per-tier signals, the standard tier's level
    /// trajectory is step-for-step identical to the global controller fed
    /// the same signals — the tenant layer is the global layer, three
    /// times over.
    #[test]
    fn uniform_tenancy_tracks_the_global_controller(
        n in 2usize..8,
        dwell in 1.0f64..50.0,
        steps in proptest::collection::vec(
            (0.01f64..30.0, 0.0f64..64.0, 0.0f64..200.0),
            1..60,
        ),
    ) {
        let t = make_table(n, 3);
        let base = AdaptiveOptions::default().with_dwell_ms(dwell);
        let mut tenant = TenantPolicy::new(
            &t,
            Policy::StrictAccuracy,
            TenantOptions::default().with_base(base).with_shield(1.0),
        );
        let mut global = AdaptivePolicy::new(&t, Policy::StrictAccuracy, base);
        let mut now = 0.0;
        for (dt, depth, p99) in steps {
            now += dt;
            let signal = signal_at(now, depth, p99, -1.0, 20.0);
            let _ = global.observe(&signal);
            let _ = tenant.observe(&TierSignals::uniform(signal));
            for tier in TenantTier::ALL {
                prop_assert_eq!(
                    tenant.level(tier), global.level(),
                    "tier {} diverged from the global controller", tier.name()
                );
            }
        }
        prop_assert_eq!(tenant.degrades(TenantTier::Standard), global.degrades());
        prop_assert_eq!(tenant.upgrades(TenantTier::Standard), global.upgrades());
    }

    /// Zero pressure and no predictor mean zero interference, for every
    /// tier: idle signals never move any ladder, shaping is the identity,
    /// and decisions match the static scheduler exactly — the tiered
    /// analogue of the global controller's static-equivalence property.
    #[test]
    fn zero_pressure_and_no_predictor_is_identity(
        q_window in 1usize..5,
        shield in 1.0f64..4.0,
        constraints in proptest::collection::vec((0.70f64..0.88, 0.5f64..9.0), 1..40),
    ) {
        for policy in [Policy::StrictAccuracy, Policy::StrictLatency] {
            let t = make_table(5, 4);
            let mut p = TenantPolicy::new(
                &t,
                policy,
                TenantOptions::default().with_shield(shield).with_predictor(None),
            );
            let mk = || Scheduler::new(
                make_table(5, 4), policy, CacheSelection::MinDistanceToAvg, q_window,
            );
            let (mut tiered, mut fixed) = (mk(), mk());
            for (i, (a, l)) in constraints.iter().enumerate() {
                let evs = p.observe(&TierSignals::uniform(LoadSignal::idle(i as f64 * 100.0)));
                prop_assert!(evs.is_empty(), "idle signals must never move any tier");
                let q = Query::new(i as u64, *a, *l);
                let tier = TenantTier::ALL[i % 3];
                let shaped = p.shape(tier, &q, &t, tiered.current_cache());
                prop_assert_eq!(shaped, q, "level-0 shaping is the identity for every tier");
                prop_assert_eq!(tiered.decide(&shaped), fixed.decide(&q));
            }
            for tier in TenantTier::ALL {
                prop_assert_eq!(p.degrades(tier) + p.upgrades(tier), 0);
            }
        }
    }
}
