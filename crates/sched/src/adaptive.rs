//! Load-adaptive SubNet selection: graceful degradation under pressure.
//!
//! The static scheduler ([`crate::scheduler::Scheduler`]) picks SubNets as
//! if the queue were always empty, which is exactly why an open serving
//! loop falls off an SLO cliff under bursts: every query still asks for
//! its full accuracy budget while the queue grows without bound. The
//! adaptive layer closes SUSHI's motivating feedback loop — *degrade to a
//! smaller SubGraph under pressure, upgrade when idle* — without the
//! scheduler ever seeing an accelerator type:
//!
//! * [`LoadSignal`] is plain data sampled from the serving loop each
//!   event: a time-weighted queue depth, the streaming p99 of completed
//!   queries, and the deadline slack of the head-of-line query.
//! * [`AdaptivePolicy`] folds the signal into a scalar *pressure* and
//!   walks a degradation **level** up and down with hysteresis: two
//!   thresholds (enter/exit) separated by a dead band, plus a minimum
//!   dwell time between level changes so the policy never oscillates
//!   between adjacent SubNets within one window.
//! * At level `d` the policy *shapes* queries before they reach the
//!   scheduler: it walks the constraint down the table's latency ladder
//!   (relaxing the accuracy constraint under [`Policy::StrictAccuracy`],
//!   tightening the latency constraint under [`Policy::StrictLatency`]),
//!   so `select` naturally lands on a smaller — faster — SubNet. The walk
//!   is cache-aware: a SubNet whose panels the resident SubGraph covers
//!   is cheaper under the current column and therefore survives more
//!   degradation levels than an uncovered SubNet of equal cold latency.
//!
//! Everything here is deterministic and side-effect free: the same signal
//! sequence always yields the same level trajectory, which is what lets
//! the serving simulation stay bit-reproducible with adaptation enabled.

use serde::{Deserialize, Serialize};

use crate::query::{Policy, Query};
use crate::table::{LatencyTable, EMPTY_COLUMN};

/// A point-in-time load observation fed from the serving loop.
///
/// All fields are plain numbers so the scheduler crate never depends on
/// the serving runtime or the accelerator (the SushiAbs decoupling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSignal {
    /// Simulated time of the observation, ms.
    pub now_ms: f64,
    /// Time-weighted (smoothed) admission-queue depth.
    pub queue_depth: f64,
    /// Admission-queue capacity (occupancy denominator).
    pub queue_capacity: usize,
    /// Streaming p99 of completed end-to-end latencies, ms (`0.0` before
    /// the first completion).
    pub p99_ms: f64,
    /// Deadline slack of the head-of-line query, ms
    /// ([`f64::INFINITY`] when the queue is empty).
    pub head_slack_ms: f64,
    /// The head-of-line query's full latency budget, ms (`0.0` when the
    /// queue is empty).
    pub head_budget_ms: f64,
    /// Fraction of the worker pool currently out of rotation — down or
    /// quarantined by fault supervision (`0.0` in a fault-free run, which
    /// keeps the pressure fold bit-identical to the pre-fault signal).
    pub quarantined_frac: f64,
}

impl LoadSignal {
    /// The zero-pressure signal at `now_ms` (empty queue, no tail).
    #[must_use]
    pub fn idle(now_ms: f64) -> Self {
        Self {
            now_ms,
            queue_depth: 0.0,
            queue_capacity: 1,
            p99_ms: 0.0,
            head_slack_ms: f64::INFINITY,
            head_budget_ms: 0.0,
            quarantined_frac: 0.0,
        }
    }

    /// Folds the observation into a scalar pressure in `[0, 1]`.
    ///
    /// Four saturating components, combined by `max` (any one red signal
    /// is enough to degrade):
    ///
    /// * **occupancy** — `depth / capacity`, clamped to `[0, 1]`;
    /// * **tail excess** — how far the streaming p99 exceeds the
    ///   reference scale `scale_ms` (p99 at `2 × scale` saturates);
    /// * **slack deficit** — how much of the head-of-line query's own
    ///   latency budget is already gone (`≥ 50%` budget left ⇒ 0,
    ///   none left ⇒ 1);
    /// * **capacity loss** — the fraction of the pool out of rotation,
    ///   so the ladder pre-degrades the moment replicas crash or are
    ///   quarantined instead of waiting for the queue to build up.
    #[must_use]
    pub fn pressure(&self, scale_ms: f64) -> f64 {
        let occ = (self.queue_depth / self.queue_capacity.max(1) as f64).clamp(0.0, 1.0);
        let tail =
            if scale_ms > 0.0 { (self.p99_ms / scale_ms - 1.0).clamp(0.0, 1.0) } else { 0.0 };
        let slack = if self.head_budget_ms > 0.0 && self.head_slack_ms.is_finite() {
            (1.0 - 2.0 * self.head_slack_ms / self.head_budget_ms).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let capacity = self.quarantined_frac.clamp(0.0, 1.0);
        occ.max(tail).max(slack).max(capacity)
    }
}

/// Knobs of the adaptive loop.
///
/// `#[non_exhaustive]`: construct via [`Default`] and adjust with the
/// `with_*` setters so future knobs are non-breaking. The two `*_ms`
/// knobs accept `0.0` as "derive from the latency table" (the mean cold
/// latency sets the natural time scale of the workload).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct AdaptiveOptions {
    /// Degrade one level when pressure reaches this threshold.
    pub degrade_threshold: f64,
    /// Upgrade one level when pressure falls to this threshold. Must be
    /// strictly below `degrade_threshold`; the gap is the hysteresis dead
    /// band.
    pub upgrade_threshold: f64,
    /// Minimum simulated time between level changes, ms (`0.0` ⇒ derive
    /// the serving set's mean cold latency: one step per service time, so
    /// the controller reacts at the cadence it receives completion
    /// evidence and a burst one dwell long can only move one level).
    pub dwell_ms: f64,
    /// Reference latency scale for the tail-pressure component, ms
    /// (`0.0` ⇒ derive `2 ×` mean cold latency, the scenario presets'
    /// deadline floor).
    pub slo_scale_ms: f64,
    /// Deepest degradation level (`0` ⇒ one less than the table's row
    /// count: every rung of the ladder reachable).
    pub max_level: usize,
    /// Floor for the shrunken dynamic-batch size under pressure.
    pub min_batch: usize,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        Self {
            degrade_threshold: 0.4,
            upgrade_threshold: 0.15,
            dwell_ms: 0.0,
            slo_scale_ms: 0.0,
            max_level: 0,
            min_batch: 1,
        }
    }
}

impl AdaptiveOptions {
    /// Sets the hysteresis band (degrade high, upgrade low).
    #[must_use]
    pub fn with_thresholds(mut self, degrade: f64, upgrade: f64) -> Self {
        self.degrade_threshold = degrade;
        self.upgrade_threshold = upgrade;
        self
    }

    /// Sets the minimum time between level changes, ms.
    #[must_use]
    pub fn with_dwell_ms(mut self, dwell_ms: f64) -> Self {
        self.dwell_ms = dwell_ms;
        self
    }

    /// Sets the reference latency scale for tail pressure, ms.
    #[must_use]
    pub fn with_slo_scale_ms(mut self, scale_ms: f64) -> Self {
        self.slo_scale_ms = scale_ms;
        self
    }

    /// Sets the deepest degradation level.
    #[must_use]
    pub fn with_max_level(mut self, max_level: usize) -> Self {
        self.max_level = max_level;
        self
    }

    /// Sets the dynamic-batch shrink floor.
    #[must_use]
    pub fn with_min_batch(mut self, min_batch: usize) -> Self {
        self.min_batch = min_batch;
        self
    }

    /// Whether the knob combination is coherent (builder validation).
    ///
    /// # Errors
    /// Returns a description of the first incoherent knob.
    pub fn validate(&self) -> Result<(), String> {
        let finite_nonneg = |v: f64| v.is_finite() && v >= 0.0;
        if !finite_nonneg(self.degrade_threshold) || !finite_nonneg(self.upgrade_threshold) {
            return Err("adaptive thresholds must be finite and non-negative".into());
        }
        if self.upgrade_threshold >= self.degrade_threshold {
            return Err(format!(
                "adaptive hysteresis band is empty: upgrade threshold {} must be below \
                 degrade threshold {}",
                self.upgrade_threshold, self.degrade_threshold
            ));
        }
        if !finite_nonneg(self.dwell_ms) || !finite_nonneg(self.slo_scale_ms) {
            return Err("adaptive dwell/scale must be finite and non-negative".into());
        }
        if self.min_batch == 0 {
            return Err("adaptive min_batch must be at least 1".into());
        }
        Ok(())
    }
}

/// One enacted level change (for the serving runtime's adaptation trace).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveEvent {
    /// Simulated time of the change, ms.
    pub at_ms: f64,
    /// Pressure that triggered it.
    pub pressure: f64,
    /// Degradation level *after* the change.
    pub level: usize,
}

/// The hysteresis controller: walks a degradation level over the table's
/// latency ladder and shapes queries accordingly.
///
/// Construct one per serving run from the same [`LatencyTable`] the
/// scheduler uses, [`observe`](Self::observe) a [`LoadSignal`] at every
/// event, and [`shape`](Self::shape) each query before handing it to
/// [`crate::scheduler::Scheduler::decide`]. At level 0 shaping is the
/// identity, so a run whose pressure never crosses the degrade threshold
/// is bit-identical to the static policy.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    policy: Policy,
    opts: AdaptiveOptions,
    /// Row indices sorted by cold latency ascending (the ladder: rung 0
    /// is the fastest SubNet, the last rung the slowest).
    ladder: Vec<usize>,
    max_level: usize,
    dwell_ms: f64,
    scale_ms: f64,
    level: usize,
    last_change_ms: f64,
    degrades: usize,
    upgrades: usize,
}

impl AdaptivePolicy {
    /// Builds a controller for `table` under `policy`.
    ///
    /// # Panics
    /// Panics when `opts` fail [`AdaptiveOptions::validate`] — the engine
    /// builder surfaces the same condition as a config error first.
    #[must_use]
    pub fn new(table: &LatencyTable, policy: Policy, opts: AdaptiveOptions) -> Self {
        if let Err(e) = opts.validate() {
            panic!("invalid adaptive options: {e}");
        }
        let mut ladder: Vec<usize> = (0..table.num_rows()).collect();
        ladder.sort_by(|&a, &b| {
            table
                .latency_ms(a, EMPTY_COLUMN)
                .partial_cmp(&table.latency_ms(b, EMPTY_COLUMN))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mean_cold =
            (0..table.num_rows()).map(|i| table.latency_ms(i, EMPTY_COLUMN)).sum::<f64>()
                / table.num_rows() as f64;
        let hard_max = ladder.len().saturating_sub(1);
        let max_level = if opts.max_level == 0 { hard_max } else { opts.max_level.min(hard_max) };
        let scale_ms = if opts.slo_scale_ms > 0.0 { opts.slo_scale_ms } else { 2.0 * mean_cold };
        let dwell_ms = if opts.dwell_ms > 0.0 { opts.dwell_ms } else { mean_cold };
        Self {
            policy,
            opts,
            ladder,
            max_level,
            dwell_ms,
            scale_ms,
            level: 0,
            last_change_ms: f64::NEG_INFINITY,
            degrades: 0,
            upgrades: 0,
        }
    }

    /// Current degradation level (0 = no degradation).
    #[must_use]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Deepest reachable level.
    #[must_use]
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Level changes that degraded so far.
    #[must_use]
    pub fn degrades(&self) -> usize {
        self.degrades
    }

    /// Level changes that upgraded so far.
    #[must_use]
    pub fn upgrades(&self) -> usize {
        self.upgrades
    }

    /// The resolved minimum time between level changes, ms.
    #[must_use]
    pub fn dwell_ms(&self) -> f64 {
        self.dwell_ms
    }

    /// The resolved tail-pressure reference scale, ms. Doubles as the
    /// natural smoothing constant for the queue-depth signal.
    #[must_use]
    pub fn scale_ms(&self) -> f64 {
        self.scale_ms
    }

    /// Folds one observation into the controller: at most one level step,
    /// and only if at least [`dwell_ms`](Self::dwell_ms) has passed since
    /// the previous step (the oscillation guard). Returns the enacted
    /// change, if any.
    pub fn observe(&mut self, signal: &LoadSignal) -> Option<AdaptiveEvent> {
        let pressure = signal.pressure(self.scale_ms);
        self.observe_pressure(signal.now_ms, pressure)
    }

    /// [`observe`](Self::observe) with an externally computed pressure:
    /// the same one-step-per-dwell hysteresis walk, but the caller owns
    /// the signal-to-pressure fold. This is the entry point of the tenant
    /// layer ([`crate::tenant::TenantPolicy`]), which mixes per-tier
    /// signals and a feed-forward arrival-prediction boost into the
    /// pressure before stepping each tier's ladder.
    pub fn observe_pressure(&mut self, now_ms: f64, pressure: f64) -> Option<AdaptiveEvent> {
        if now_ms - self.last_change_ms < self.dwell_ms {
            return None;
        }
        if pressure >= self.opts.degrade_threshold && self.level < self.max_level {
            self.level += 1;
            self.degrades += 1;
        } else if pressure <= self.opts.upgrade_threshold && self.level > 0 {
            self.level -= 1;
            self.upgrades += 1;
        } else {
            return None;
        }
        self.last_change_ms = now_ms;
        Some(AdaptiveEvent { at_ms: now_ms, pressure, level: self.level })
    }

    /// The ladder rung the current level caps the walk at: with `R` rows
    /// and level `d`, the `d` slowest rungs become unreachable.
    fn cap_rung(&self) -> usize {
        self.ladder[self.ladder.len() - 1 - self.level]
    }

    /// Shapes a query for the current level: walks its constraint down
    /// the ConstraintSpace so the scheduler's `select` lands within the
    /// allowed ladder prefix. At level 0 this is the identity.
    ///
    /// The walk is biased toward SubNets covered by the resident SubGraph
    /// (`cached`): the latency budget implied by the cap rung is its
    /// *cold* latency, but feasibility is measured under the current
    /// column, so a row whose panels are resident — and therefore cheaper
    /// — stays reachable at levels where an uncovered row of equal cold
    /// latency would already have been shed.
    #[must_use]
    pub fn shape(&self, query: &Query, table: &LatencyTable, cached: usize) -> Query {
        if self.level == 0 {
            return *query;
        }
        let budget_ms = table.latency_ms(self.cap_rung(), EMPTY_COLUMN);
        match self.policy {
            Policy::StrictAccuracy => {
                // Highest accuracy still affordable within the cap rung's
                // budget under the *current* cache column.
                let cap_acc = table
                    .rows()
                    .iter()
                    .filter(|r| r.latency_ms[cached] <= budget_ms)
                    .map(|r| r.accuracy)
                    .fold(f64::NEG_INFINITY, f64::max);
                // The cap rung itself always qualifies (cached ≤ cold).
                debug_assert!(cap_acc.is_finite());
                Query::new(
                    query.id,
                    query.accuracy_constraint.min(cap_acc),
                    query.latency_constraint_ms,
                )
            }
            Policy::StrictLatency => Query::new(
                query.id,
                query.accuracy_constraint,
                query.latency_constraint_ms.min(budget_ms),
            ),
        }
    }

    /// The dynamic-batch size cap at the current level: halves per level,
    /// floored at the configured `min_batch` (smaller batches dispatch
    /// sooner, trading amortization for head-of-line latency).
    #[must_use]
    pub fn batch_cap(&self, base_max_batch: usize) -> usize {
        (base_max_batch >> self.level.min(usize::BITS as usize - 1)).max(self.opts.min_batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::test_support::{subnet, synthetic_latency};

    fn table() -> LatencyTable {
        let subnets = vec![subnet("A", 1, 0.75), subnet("B", 2, 0.77), subnet("C", 3, 0.79)];
        let candidates = vec![
            subnet("gA", 1, 0.0).graph,
            subnet("gB", 2, 0.0).graph,
            subnet("gC", 3, 0.0).graph,
        ];
        LatencyTable::build(&subnets, candidates, synthetic_latency)
    }

    fn policy() -> AdaptivePolicy {
        AdaptivePolicy::new(&table(), Policy::StrictAccuracy, AdaptiveOptions::default())
    }

    fn pressured(now_ms: f64) -> LoadSignal {
        LoadSignal {
            now_ms,
            queue_depth: 30.0,
            queue_capacity: 32,
            p99_ms: 100.0,
            head_slack_ms: 0.5,
            head_budget_ms: 20.0,
            quarantined_frac: 0.0,
        }
    }

    #[test]
    fn idle_signal_has_zero_pressure() {
        assert_eq!(LoadSignal::idle(5.0).pressure(10.0), 0.0);
    }

    #[test]
    fn pressure_components_saturate_at_one() {
        let s = LoadSignal {
            now_ms: 0.0,
            queue_depth: 1e6,
            queue_capacity: 4,
            p99_ms: 1e9,
            head_slack_ms: -500.0,
            head_budget_ms: 1.0,
            quarantined_frac: 5.0,
        };
        assert_eq!(s.pressure(10.0), 1.0);
    }

    #[test]
    fn capacity_loss_alone_raises_pressure() {
        // An otherwise idle pool with half its replicas out of rotation
        // reads as pressure 0.5 — the ladder pre-degrades on capacity
        // loss instead of waiting for queue buildup.
        let s = LoadSignal { quarantined_frac: 0.5, ..LoadSignal::idle(0.0) };
        assert_eq!(s.pressure(10.0), 0.5);
        // And a fault-free signal is bit-identical to the old fold.
        assert_eq!(LoadSignal::idle(0.0).pressure(10.0), 0.0);
    }

    #[test]
    fn degrades_under_pressure_and_upgrades_when_idle() {
        let mut p = policy();
        let dwell = p.dwell_ms();
        assert_eq!(p.level(), 0);
        let ev = p.observe(&pressured(0.0)).expect("first degrade");
        assert_eq!(ev.level, 1);
        let ev = p.observe(&pressured(dwell)).expect("second degrade");
        assert_eq!(ev.level, 2);
        assert_eq!(p.level(), p.max_level(), "3-row ladder caps at level 2");
        assert!(p.observe(&pressured(2.0 * dwell)).is_none(), "already at max level");
        let ev = p.observe(&LoadSignal::idle(3.0 * dwell)).expect("upgrade");
        assert_eq!(ev.level, 1);
        assert_eq!(p.degrades(), 2);
        assert_eq!(p.upgrades(), 1);
    }

    #[test]
    fn dwell_blocks_immediate_reversal() {
        let mut p = policy();
        assert!(p.observe(&pressured(0.0)).is_some());
        // An idle signal right after the degrade must NOT flap back.
        assert!(p.observe(&LoadSignal::idle(0.1)).is_none());
        assert!(p.observe(&LoadSignal::idle(p.dwell_ms() * 0.99)).is_none());
        assert!(p.observe(&LoadSignal::idle(p.dwell_ms() * 1.01)).is_some());
    }

    #[test]
    fn dead_band_holds_level() {
        let mut p = policy();
        assert!(p.observe(&pressured(0.0)).is_some());
        // Pressure between the thresholds: hold, forever.
        let mid = LoadSignal { queue_depth: 10.0, queue_capacity: 32, ..LoadSignal::idle(1e6) };
        let pr = mid.pressure(p.scale_ms());
        assert!(pr > 0.15 && pr < 0.5, "mid pressure {pr}");
        assert!(p.observe(&mid).is_none());
        assert_eq!(p.level(), 1);
    }

    #[test]
    fn shape_is_identity_at_level_zero() {
        let p = policy();
        let q = Query::new(7, 0.785, 12.0);
        assert_eq!(p.shape(&q, &table(), EMPTY_COLUMN), q);
    }

    #[test]
    fn shape_relaxes_accuracy_down_the_ladder() {
        let t = table();
        let mut p = policy();
        let q = Query::new(0, 0.79, 100.0); // wants C (row 2)
        assert!(p.observe(&pressured(0.0)).is_some());
        // Level 1: C (slowest rung) shed; cap accuracy is B's.
        let shaped = p.shape(&q, &t, EMPTY_COLUMN);
        assert!((shaped.accuracy_constraint - 0.77).abs() < 1e-12);
        assert_eq!(t.select(Policy::StrictAccuracy, shaped.accuracy_constraint, 100.0, 0), 1);
        // Level 2: only A remains.
        assert!(p.observe(&pressured(p.dwell_ms())).is_some());
        let shaped = p.shape(&q, &t, EMPTY_COLUMN);
        assert!((shaped.accuracy_constraint - 0.75).abs() < 1e-12);
    }

    #[test]
    fn shape_never_raises_a_constraint() {
        let t = table();
        let mut p = policy();
        assert!(p.observe(&pressured(0.0)).is_some());
        let q = Query::new(0, 0.74, 100.0); // already below every rung
        let shaped = p.shape(&q, &t, EMPTY_COLUMN);
        assert!(shaped.accuracy_constraint <= q.accuracy_constraint);
        assert_eq!(shaped.accuracy_constraint, 0.74, "modest queries are untouched");
    }

    #[test]
    fn cache_residency_keeps_covered_rows_reachable() {
        // With gC resident, C's warm latency (2.1) fits inside B's cold
        // budget (2.0)? No — but it fits at level 1 only if ≤ budget.
        // Construct the comparison explicitly: under the cold column C is
        // shed at level 1; under column gC (index 3) C's latency drops by
        // 30% (to 2.1), still above B's cold 2.0 — but at level 0 nothing
        // is shed. Use a wider table where residency flips the outcome.
        let subnets = vec![subnet("A", 1, 0.75), subnet("B", 3, 0.77), subnet("C", 4, 0.79)];
        let candidates = vec![subnet("gC", 4, 0.0).graph];
        let t = LatencyTable::build(&subnets, candidates, synthetic_latency);
        // Cold: A=1, B=3, C=4. Warm C under gC: 4·(1−0.3)=2.8 ≤ B's cold 3.
        let mut p = AdaptivePolicy::new(&t, Policy::StrictAccuracy, AdaptiveOptions::default());
        assert!(p.observe(&pressured(0.0)).is_some());
        let q = Query::new(0, 0.79, 100.0);
        let cold = p.shape(&q, &t, EMPTY_COLUMN);
        assert!((cold.accuracy_constraint - 0.77).abs() < 1e-12, "C shed when cold");
        let warm = p.shape(&q, &t, 1);
        assert!(
            (warm.accuracy_constraint - 0.79).abs() < 1e-12,
            "resident panels keep C affordable at level 1 (got {})",
            warm.accuracy_constraint
        );
    }

    #[test]
    fn strict_latency_tightens_budget() {
        let t = table();
        let mut p = AdaptivePolicy::new(&t, Policy::StrictLatency, AdaptiveOptions::default());
        assert!(p.observe(&pressured(0.0)).is_some());
        let q = Query::new(0, 0.0, 100.0);
        let shaped = p.shape(&q, &t, EMPTY_COLUMN);
        assert!((shaped.latency_constraint_ms - 2.0).abs() < 1e-12, "capped at B's cold latency");
    }

    #[test]
    fn batch_cap_halves_per_level_with_floor() {
        let mut p = policy();
        assert_eq!(p.batch_cap(4), 4);
        assert!(p.observe(&pressured(0.0)).is_some());
        assert_eq!(p.batch_cap(4), 2);
        assert!(p.observe(&pressured(p.dwell_ms())).is_some());
        assert_eq!(p.batch_cap(4), 1);
        let mut floored = AdaptivePolicy::new(
            &table(),
            Policy::StrictAccuracy,
            AdaptiveOptions::default().with_min_batch(2),
        );
        assert!(floored.observe(&pressured(0.0)).is_some());
        assert!(floored.observe(&pressured(floored.dwell_ms())).is_some());
        assert_eq!(floored.batch_cap(4), 2);
    }

    #[test]
    fn invalid_options_are_rejected() {
        assert!(AdaptiveOptions::default().with_thresholds(0.2, 0.5).validate().is_err());
        assert!(AdaptiveOptions::default().with_min_batch(0).validate().is_err());
        assert!(AdaptiveOptions::default().with_dwell_ms(f64::NAN).validate().is_err());
        assert!(AdaptiveOptions::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid adaptive options")]
    fn policy_construction_checks_options() {
        let _ = AdaptivePolicy::new(
            &table(),
            Policy::StrictAccuracy,
            AdaptiveOptions::default().with_thresholds(0.1, 0.9),
        );
    }
}
