//! SushiSched: Algorithm 1 — per-query SubNet selection and amortized
//! across-query SubGraph caching.
//!
//! Per query `qₜ = (Aₜ, Lₜ)` the scheduler selects the SubNet to serve from
//! the latency table under the *current* cache state. It maintains a
//! running average (`AvgNet`) of the vectorized SubNets served for the past
//! `Q` queries; every `Q` queries it re-caches the candidate SubGraph
//! closest to that average — frequent kernels/channels survive, infrequent
//! ones age out, and (unlike pure intersection) frequent-but-not-universal
//! structure is preserved (Fig. 6).
//!
//! The scheduler itself is load-oblivious: it prices queries as if the
//! queue were empty. Under pressure the serving loop narrows the
//! constraints it forwards here via [`crate::adaptive::AdaptivePolicy`]
//! (query *shaping*), so `decide` keeps full authority over row selection
//! and cache placement — the adaptive layer never overrides a decision,
//! it only changes the question. That split is what lets `AvgNet` and the
//! Q-window cache keep tracking the SubNets *actually served* while
//! degraded.

use serde::{Deserialize, Serialize};

use sushi_wsnet::RunningAvg;

use crate::query::{Policy, Query};
use crate::table::{LatencyTable, EMPTY_COLUMN};

/// How the cached SubGraph is chosen every `Q` queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheSelection {
    /// Algorithm 1: argmin L2 distance between candidate columns and
    /// `AvgNet` (state-aware).
    MinDistanceToAvg,
    /// Ablation: argmin *cosine* distance to `AvgNet` — shape-sensitive but
    /// scale-blind, so it can prefer a similarly-proportioned but smaller
    /// SubGraph.
    MinCosineToAvg,
    /// State-unaware baseline: cache the column matching the most recently
    /// served SubNet (the "SUSHI w/ PB, state-unaware caching" comparison
    /// point of §5.7).
    FollowLast,
    /// Never update the cache after the first installation.
    Frozen,
    /// Never cache anything (degenerates to the w/o-PB serving path).
    Disabled,
}

/// One scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decision {
    /// Row index of the SubNet to serve.
    pub subnet_row: usize,
    /// `Some(column)` when the scheduler wants a new SubGraph cached
    /// before/while serving this query.
    pub cache_update: Option<usize>,
}

/// The SushiSched query scheduler.
#[derive(Debug, Clone)]
pub struct Scheduler {
    table: LatencyTable,
    policy: Policy,
    cache_selection: CacheSelection,
    q_window: usize,
    avg: RunningAvg,
    current_cache: usize,
    served: u64,
}

impl Scheduler {
    /// Creates a scheduler over a latency table.
    ///
    /// `q_window` is the caching period `Q` (and the averaging window).
    ///
    /// # Panics
    /// Panics if `q_window == 0`.
    #[must_use]
    pub fn new(
        table: LatencyTable,
        policy: Policy,
        cache_selection: CacheSelection,
        q_window: usize,
    ) -> Self {
        assert!(q_window > 0, "Q must be positive");
        let dim = table.row(0).vector.dim();
        Self {
            table,
            policy,
            cache_selection,
            q_window,
            avg: RunningAvg::new(q_window, dim),
            current_cache: EMPTY_COLUMN,
            served: 0,
        }
    }

    /// The underlying latency table.
    #[must_use]
    pub fn table(&self) -> &LatencyTable {
        &self.table
    }

    /// Currently assumed cache column.
    #[must_use]
    pub fn current_cache(&self) -> usize {
        self.current_cache
    }

    /// The selection policy queries are priced under (the adaptive layer
    /// shapes queries against the same policy).
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The caching period `Q`.
    #[must_use]
    pub fn q_window(&self) -> usize {
        self.q_window
    }

    /// Number of queries scheduled so far.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Schedules one query: SubNet selection now, plus a cache update every
    /// `Q`-th query (Algorithm 1's "for every Q queries" step).
    pub fn decide(&mut self, query: &Query) -> Decision {
        let row = self.table.select(
            self.policy,
            query.accuracy_constraint,
            query.latency_constraint_ms,
            self.current_cache,
        );
        self.avg.push(self.table.row(row).vector.clone());
        self.served += 1;

        let mut cache_update = None;
        if self.served.is_multiple_of(self.q_window as u64) {
            if let Some(next) = self.next_cache(row) {
                if next != self.current_cache {
                    self.current_cache = next;
                    cache_update = Some(next);
                } else if self.served == self.q_window as u64 && next != EMPTY_COLUMN {
                    // First decision epoch: enact even if it equals the
                    // initial assumption so the accelerator actually loads it.
                    cache_update = Some(next);
                }
            }
        }
        Decision { subnet_row: row, cache_update }
    }

    fn next_cache(&self, last_row: usize) -> Option<usize> {
        match self.cache_selection {
            CacheSelection::Disabled => None,
            CacheSelection::Frozen => {
                (self.current_cache == EMPTY_COLUMN && self.table.num_columns() > 1).then_some(1)
            }
            CacheSelection::FollowLast => {
                Some(self.table.closest_column(&self.table.row(last_row).vector.clone()))
            }
            CacheSelection::MinDistanceToAvg => {
                let avg = self.avg.mean()?;
                Some(self.table.closest_column(&avg))
            }
            CacheSelection::MinCosineToAvg => {
                let avg = self.avg.mean()?;
                Some(self.table.closest_column_by(&avg, |a, b| a.dist_cosine(b)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::test_support::{subnet, synthetic_latency};

    fn table() -> LatencyTable {
        let subnets = vec![subnet("A", 1, 0.75), subnet("B", 2, 0.77), subnet("C", 3, 0.79)];
        let candidates = vec![
            subnet("gA", 1, 0.0).graph,
            subnet("gB", 2, 0.0).graph,
            subnet("gC", 3, 0.0).graph,
        ];
        LatencyTable::build(&subnets, candidates, synthetic_latency)
    }

    fn query(a: f64, l: f64) -> Query {
        Query::new(0, a, l)
    }

    #[test]
    fn serves_hard_accuracy_constraint() {
        let mut s =
            Scheduler::new(table(), Policy::StrictAccuracy, CacheSelection::MinDistanceToAvg, 4);
        let d = s.decide(&query(0.78, 100.0));
        assert!(s.table().row(d.subnet_row).accuracy >= 0.78);
    }

    #[test]
    fn cache_updates_only_every_q_queries() {
        let mut s =
            Scheduler::new(table(), Policy::StrictAccuracy, CacheSelection::MinDistanceToAvg, 3);
        let mut updates = Vec::new();
        for i in 0..9 {
            let d = s.decide(&query(0.76, 100.0));
            if d.cache_update.is_some() {
                updates.push(i);
            }
        }
        // Only at query indices 2, 5, 8 may updates occur (steady stream ->
        // the average is constant after the first window, so only index 2).
        assert!(updates.iter().all(|i| (i + 1) % 3 == 0), "{updates:?}");
        assert!(!updates.is_empty());
    }

    #[test]
    fn steady_stream_converges_to_matching_subgraph() {
        let mut s =
            Scheduler::new(table(), Policy::StrictAccuracy, CacheSelection::MinDistanceToAvg, 2);
        for _ in 0..6 {
            let _ = s.decide(&query(0.785, 100.0)); // always serves C
        }
        // Cache must be column gC (index 3): the subgraph matching C.
        assert_eq!(s.current_cache(), 3);
    }

    #[test]
    fn mixed_stream_caches_intermediate_shape() {
        // Alternate A-heavy and B queries; the average sits between A and B,
        // and gB (index 2) should win over gC.
        let mut s =
            Scheduler::new(table(), Policy::StrictAccuracy, CacheSelection::MinDistanceToAvg, 4);
        for i in 0..8 {
            let a = if i % 2 == 0 { 0.74 } else { 0.76 };
            let _ = s.decide(&query(a, 100.0));
        }
        assert!(s.current_cache() == 1 || s.current_cache() == 2, "cache {}", s.current_cache());
    }

    #[test]
    fn disabled_selection_never_updates() {
        let mut s = Scheduler::new(table(), Policy::StrictAccuracy, CacheSelection::Disabled, 2);
        for _ in 0..8 {
            assert_eq!(s.decide(&query(0.76, 100.0)).cache_update, None);
        }
        assert_eq!(s.current_cache(), EMPTY_COLUMN);
    }

    #[test]
    fn frozen_selection_updates_once() {
        let mut s = Scheduler::new(table(), Policy::StrictAccuracy, CacheSelection::Frozen, 2);
        let mut updates = 0;
        for _ in 0..8 {
            if s.decide(&query(0.76, 100.0)).cache_update.is_some() {
                updates += 1;
            }
        }
        assert_eq!(updates, 1);
    }

    #[test]
    fn follow_last_tracks_recent_subnet() {
        let mut s = Scheduler::new(table(), Policy::StrictAccuracy, CacheSelection::FollowLast, 1);
        let _ = s.decide(&query(0.785, 100.0)); // serves C
        assert_eq!(s.current_cache(), 3);
        let _ = s.decide(&query(0.0, 100.0)); // serves A (min latency feasible)
        assert_eq!(s.current_cache(), 1);
    }

    #[test]
    fn latency_policy_exploits_cache_state() {
        // After caching gC, C becomes feasible at a constraint that only
        // admitted B when cold.
        let mut s =
            Scheduler::new(table(), Policy::StrictLatency, CacheSelection::MinDistanceToAvg, 1);
        let d1 = s.decide(&query(0.0, 2.5));
        assert_eq!(s.table().row(d1.subnet_row).name, "B");
        // Serving B caches gB; B latency drops to 1.4, still only B feasible
        // at 2.5... now serve with 2.2: C with gC cached is 2.1.
        for _ in 0..4 {
            let _ = s.decide(&query(0.0, 2.5));
        }
        let d = s.decide(&query(0.0, 2.2));
        let name = &s.table().row(d.subnet_row).name;
        assert!(name == "B" || name == "C");
    }

    #[test]
    #[should_panic(expected = "Q must be positive")]
    fn zero_window_rejected() {
        let _ =
            Scheduler::new(table(), Policy::StrictAccuracy, CacheSelection::MinDistanceToAvg, 0);
    }

    #[test]
    fn served_counter_increments() {
        let mut s =
            Scheduler::new(table(), Policy::StrictAccuracy, CacheSelection::MinDistanceToAvg, 2);
        for _ in 0..5 {
            let _ = s.decide(&query(0.75, 10.0));
        }
        assert_eq!(s.served(), 5);
    }
}
