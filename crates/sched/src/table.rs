//! SushiAbs: the latency-table abstraction (§2.4, §3.2).
//!
//! The table exposes "the latency of activating a SubNet `i` as a function
//! of a currently cached SubGraph `j`" — a black box that keeps
//! `SushiSched` accelerator-agnostic while retaining implicit state
//! awareness. Space (R1) is managed by restricting columns to a small
//! candidate set `S` (|S| ≪ 10¹⁹); time (R2) by O(rows) feasibility scans
//! and O(1) cell lookups.
//!
//! Column 0 is always the empty SubGraph (cold accelerator), so the table
//! also answers "what if nothing is cached".

use serde::{Deserialize, Serialize};

use sushi_wsnet::{NetVector, SubGraph, SubNet};

use crate::query::Policy;

/// One row: a servable SubNet with its fixed accuracy, vector encoding and
/// per-column latency estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRow {
    /// SubNet name.
    pub name: String,
    /// Fixed top-1 accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// `[K₁, C₁, …]` encoding of the SubNet (Fig. 6).
    pub vector: NetVector,
    /// `latency_ms[j]` = serving latency with column `j` cached.
    pub latency_ms: Vec<f64>,
}

/// One column: a cacheable SubGraph with its vector encoding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableColumn {
    /// The cacheable SubGraph.
    pub graph: SubGraph,
    /// Its `[K₁, C₁, …]` encoding.
    pub vector: NetVector,
}

/// The SubNet × SubGraph latency lookup table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyTable {
    rows: Vec<TableRow>,
    columns: Vec<TableColumn>,
}

/// Index of the empty (cold) column.
pub const EMPTY_COLUMN: usize = 0;

impl LatencyTable {
    /// Builds a table by probing `latency_of(subnet, cached)` for every
    /// cell. `candidates` become columns `1..`; column 0 is the empty
    /// SubGraph.
    ///
    /// The probe is the *only* place the accelerator appears — it is
    /// typically backed by `sushi_accel` in production and by a synthetic
    /// function in tests, which is exactly the decoupling SushiAbs claims.
    ///
    /// # Panics
    /// Panics if `subnets` is empty.
    pub fn build(
        subnets: &[SubNet],
        candidates: Vec<SubGraph>,
        mut latency_of: impl FnMut(&SubNet, Option<&SubGraph>) -> f64,
    ) -> Self {
        assert!(!subnets.is_empty(), "table needs at least one SubNet row");
        let num_layers = subnets[0].graph.num_layers();
        let mut columns = Vec::with_capacity(candidates.len() + 1);
        columns.push(TableColumn {
            graph: SubGraph::empty(num_layers),
            vector: NetVector::encode(&SubGraph::empty(num_layers)),
        });
        for g in candidates {
            let vector = NetVector::encode(&g);
            columns.push(TableColumn { graph: g, vector });
        }
        let rows = subnets
            .iter()
            .map(|sn| TableRow {
                name: sn.name.clone(),
                accuracy: sn.accuracy,
                vector: NetVector::encode(&sn.graph),
                latency_ms: columns
                    .iter()
                    .enumerate()
                    .map(|(j, col)| latency_of(sn, (j != EMPTY_COLUMN).then_some(&col.graph)))
                    .collect(),
            })
            .collect();
        Self { rows, columns }
    }

    /// Number of SubNet rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns including the empty column.
    #[must_use]
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Row accessor.
    ///
    /// # Panics
    /// Panics if out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> &TableRow {
        &self.rows[i]
    }

    /// Column accessor.
    ///
    /// # Panics
    /// Panics if out of range.
    #[must_use]
    pub fn column(&self, j: usize) -> &TableColumn {
        &self.columns[j]
    }

    /// All rows.
    #[must_use]
    pub fn rows(&self) -> &[TableRow] {
        &self.rows
    }

    /// The latency estimate `L[i][j]`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[must_use]
    pub fn latency_ms(&self, row: usize, col: usize) -> f64 {
        self.rows[row].latency_ms[col]
    }

    /// Per-query SubNet selection (Algorithm 1).
    ///
    /// Under [`Policy::StrictAccuracy`], returns the min-latency row with
    /// `accuracy ≥ a_t`; if none qualifies, falls back to the
    /// maximum-accuracy row (best effort). Under [`Policy::StrictLatency`],
    /// returns the max-accuracy row with `latency ≤ l_t` under column
    /// `cached`; if none qualifies, falls back to the minimum-latency row.
    #[must_use]
    pub fn select(&self, policy: Policy, a_t: f64, l_t: f64, cached: usize) -> usize {
        match policy {
            Policy::StrictAccuracy => self
                .rows
                .iter()
                .enumerate()
                .filter(|(_, r)| r.accuracy >= a_t)
                .min_by(|a, b| cmp_f64(a.1.latency_ms[cached], b.1.latency_ms[cached]))
                .map(|(i, _)| i)
                .unwrap_or_else(|| self.max_accuracy_row()),
            Policy::StrictLatency => self
                .rows
                .iter()
                .enumerate()
                .filter(|(_, r)| r.latency_ms[cached] <= l_t)
                .max_by(|a, b| cmp_f64(a.1.accuracy, b.1.accuracy))
                .map(|(i, _)| i)
                .unwrap_or_else(|| self.min_latency_row(cached)),
        }
    }

    /// Across-query SubGraph selection: the candidate column (excluding the
    /// empty column) whose vector minimizes L2 distance to `avg`.
    ///
    /// Returns [`EMPTY_COLUMN`] when the table has no candidates.
    #[must_use]
    pub fn closest_column(&self, avg: &NetVector) -> usize {
        self.closest_column_by(avg, |a, b| a.dist_l2(b))
    }

    /// Like [`Self::closest_column`] with a custom distance measure (e.g.
    /// [`NetVector::dist_cosine`] for the distance-measure ablation).
    #[must_use]
    pub fn closest_column_by(
        &self,
        avg: &NetVector,
        dist: impl Fn(&NetVector, &NetVector) -> f64,
    ) -> usize {
        self.columns
            .iter()
            .enumerate()
            .skip(1)
            .min_by(|a, b| cmp_f64(dist(&a.1.vector, avg), dist(&b.1.vector, avg)))
            .map_or(EMPTY_COLUMN, |(j, _)| j)
    }

    /// Restricts the table to its first `n` candidate columns (plus the
    /// empty column) — the Table 5/6 size ablation.
    #[must_use]
    pub fn with_columns(&self, n: usize) -> Self {
        let keep = (n + 1).min(self.columns.len());
        Self {
            columns: self.columns[..keep].to_vec(),
            rows: self
                .rows
                .iter()
                .map(|r| TableRow {
                    name: r.name.clone(),
                    accuracy: r.accuracy,
                    vector: r.vector.clone(),
                    latency_ms: r.latency_ms[..keep].to_vec(),
                })
                .collect(),
        }
    }

    fn max_accuracy_row(&self) -> usize {
        self.rows
            .iter()
            .enumerate()
            .max_by(|a, b| cmp_f64(a.1.accuracy, b.1.accuracy))
            .map(|(i, _)| i)
            .expect("table is non-empty")
    }

    fn min_latency_row(&self, cached: usize) -> usize {
        self.rows
            .iter()
            .enumerate()
            .min_by(|a, b| cmp_f64(a.1.latency_ms[cached], b.1.latency_ms[cached]))
            .map(|(i, _)| i)
            .expect("table is non-empty")
    }
}

fn cmp_f64(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

#[cfg(test)]
pub(crate) mod test_support {
    use sushi_wsnet::layer::LayerSlice;
    use sushi_wsnet::subnet::SubNetConfig;
    use sushi_wsnet::{SubGraph, SubNet};

    /// A synthetic SubNet with a 2-layer graph scaled by `size`.
    pub fn subnet(name: &str, size: usize, accuracy: f64) -> SubNet {
        let graph = SubGraph::new(vec![
            LayerSlice::new(8 * size, 4 * size, 3),
            LayerSlice::new(16 * size, 8 * size, 3),
        ]);
        SubNet {
            name: name.into(),
            config: SubNetConfig::new(vec![1], vec![1.0]),
            graph,
            accuracy,
            flops: (size as u64) * 1_000_000,
            weight_bytes: (size as u64) * 10_000,
        }
    }

    /// A synthetic latency function: latency grows with SubNet size and
    /// shrinks with cached overlap.
    pub fn synthetic_latency(sn: &SubNet, cached: Option<&SubGraph>) -> f64 {
        let base = sn.weight_bytes as f64 / 10_000.0;
        let saving =
            cached.map_or(0.0, |g| sushi_wsnet::encoding::overlap_ratio(&sn.graph, g) * 0.3 * base);
        base - saving
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::{subnet, synthetic_latency};
    use super::*;

    fn table() -> LatencyTable {
        let subnets = vec![subnet("A", 1, 0.75), subnet("B", 2, 0.77), subnet("C", 3, 0.79)];
        let candidates = vec![subnet("gA", 1, 0.0).graph, subnet("gC", 3, 0.0).graph];
        LatencyTable::build(&subnets, candidates, synthetic_latency)
    }

    #[test]
    fn column_zero_is_empty_subgraph() {
        let t = table();
        assert!(t.column(EMPTY_COLUMN).graph.is_empty());
        assert_eq!(t.num_columns(), 3);
    }

    #[test]
    fn cached_columns_never_increase_latency() {
        let t = table();
        for i in 0..t.num_rows() {
            for j in 1..t.num_columns() {
                assert!(t.latency_ms(i, j) <= t.latency_ms(i, EMPTY_COLUMN));
            }
        }
    }

    #[test]
    fn strict_accuracy_picks_min_latency_feasible() {
        let t = table();
        // Constraint 0.76 excludes A; among B and C, B is faster.
        assert_eq!(t.select(Policy::StrictAccuracy, 0.76, f64::MAX, EMPTY_COLUMN), 1);
    }

    #[test]
    fn strict_accuracy_falls_back_to_best_accuracy() {
        let t = table();
        // Nothing satisfies 0.99 -> serve the most accurate row (C).
        assert_eq!(t.select(Policy::StrictAccuracy, 0.99, f64::MAX, EMPTY_COLUMN), 2);
    }

    #[test]
    fn strict_latency_picks_max_accuracy_feasible() {
        let t = table();
        // Cold latencies are 1, 2, 3. Constraint 2.5 admits A and B -> B.
        assert_eq!(t.select(Policy::StrictLatency, 0.0, 2.5, EMPTY_COLUMN), 1);
    }

    #[test]
    fn strict_latency_falls_back_to_fastest() {
        let t = table();
        assert_eq!(t.select(Policy::StrictLatency, 0.0, 0.1, EMPTY_COLUMN), 0);
    }

    #[test]
    fn selection_is_cache_state_aware() {
        // With gC cached, C's latency drops (3 -> 2.1), making it feasible
        // at L_t = 2.5 where it wasn't under the empty column.
        let t = table();
        let cold = t.select(Policy::StrictLatency, 0.0, 2.5, EMPTY_COLUMN);
        let warm = t.select(Policy::StrictLatency, 0.0, 2.5, 2);
        assert_eq!(cold, 1);
        assert_eq!(warm, 2, "cache state must change the feasible set");
    }

    #[test]
    fn closest_column_finds_matching_shape() {
        let t = table();
        // Average equal to subnet C's vector -> column gC (index 2).
        let avg = t.row(2).vector.clone();
        assert_eq!(t.closest_column(&avg), 2);
        let avg_a = t.row(0).vector.clone();
        assert_eq!(t.closest_column(&avg_a), 1);
    }

    #[test]
    fn with_columns_truncates_but_keeps_empty() {
        let t = table().with_columns(1);
        assert_eq!(t.num_columns(), 2);
        assert!(t.column(EMPTY_COLUMN).graph.is_empty());
        assert_eq!(t.row(0).latency_ms.len(), 2);
    }

    #[test]
    fn with_columns_larger_than_table_is_identity() {
        let t = table();
        assert_eq!(t.with_columns(100), t);
    }

    #[test]
    #[should_panic(expected = "at least one SubNet")]
    fn build_rejects_empty_rows() {
        let _ = LatencyTable::build(&[], vec![], |_, _| 0.0);
    }
}
