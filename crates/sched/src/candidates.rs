//! Candidate-set construction for SushiAbs (§3.2).
//!
//! The set of all possible cached SubGraphs is astronomically large
//! (≫ 10¹⁹ for OFA SuperNets), so the abstraction restricts caching to a
//! small set `S` of SubGraphs "selected to be close to the cache size".
//! We build `S` from the serving SubNets themselves (each truncated to the
//! PB budget) plus uniformly sampled SubNets — matching how the paper
//! scales the table's column count from 10 to 2000 (Tables 5–6).

use sushi_wsnet::sampler::ConfigSampler;
use sushi_wsnet::{SubGraph, SubNet, SuperNet};

/// Builds a candidate set of at most `count` SubGraphs, each truncated to
/// `pb_budget_bytes`.
///
/// The first candidates come from `serving_set` (in order); the remainder
/// are sampled deterministically from the SuperNet's configuration space
/// with `seed`. Duplicates are removed while preserving order.
///
/// The serving-set-first ordering is load-bearing for the adaptive layer
/// ([`crate::adaptive::AdaptivePolicy`]): whenever `count ≥
/// serving_set.len()`, every serving SubNet's budget truncation is present
/// as a column, so each rung of the degradation ladder has a resident
/// SubGraph that covers it — the cache-affinity bias can always find a
/// warm column for whatever rung the current level caps the walk at.
#[must_use]
pub fn build_candidate_set(
    net: &SuperNet,
    serving_set: &[SubNet],
    pb_budget_bytes: u64,
    count: usize,
    seed: u64,
) -> Vec<SubGraph> {
    let mut out: Vec<SubGraph> = Vec::with_capacity(count);
    let push = |g: SubGraph, out: &mut Vec<SubGraph>| {
        if !g.is_empty() && !out.contains(&g) {
            out.push(g);
        }
    };
    for sn in serving_set {
        if out.len() >= count {
            break;
        }
        push(net.subgraph_to_budget(&sn.graph, pb_budget_bytes), &mut out);
    }
    // Shape diversity: tilted truncations of the serving set (front-heavy
    // and back-heavy variants of the same SubNets are different SubGraphs
    // with different serving affinities — Fig. 3).
    const BIASES: [f64; 4] = [3.0, -3.0, 6.0, -6.0];
    'outer: for &bias in &BIASES {
        for sn in serving_set {
            if out.len() >= count {
                break 'outer;
            }
            push(net.subgraph_to_budget_biased(&sn.graph, pb_budget_bytes, bias), &mut out);
        }
    }
    let mut sampler = ConfigSampler::new(net, seed);
    let mut attempts = 0;
    while out.len() < count && attempts < count * 20 {
        attempts += 1;
        let sn = sampler.sample_subnets(1).pop().expect("one subnet");
        let bias = match attempts % 3 {
            0 => 0.0,
            1 => BIASES[attempts % 4],
            _ => -BIASES[attempts % 4],
        };
        push(net.subgraph_to_budget_biased(&sn.graph, pb_budget_bytes, bias), &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sushi_wsnet::zoo;

    #[test]
    fn candidates_fit_budget() {
        let net = zoo::resnet50_supernet();
        let picks = zoo::paper_subnets(&net);
        let budget = 1728 * 1024;
        let set = build_candidate_set(&net, &picks, budget, 20, 7);
        assert!(!set.is_empty());
        for g in &set {
            assert!(net.subgraph_weight_bytes(g) <= budget);
        }
    }

    #[test]
    fn candidates_are_unique() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let set = build_candidate_set(&net, &picks, 1_000_000, 30, 3);
        for (i, a) in set.iter().enumerate() {
            for b in &set[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn serving_set_candidates_come_first() {
        let net = zoo::resnet50_supernet();
        let picks = zoo::paper_subnets(&net);
        let budget = 1728 * 1024;
        let set = build_candidate_set(&net, &picks, budget, 10, 7);
        let first = net.subgraph_to_budget(&picks[0].graph, budget);
        assert_eq!(set[0], first);
    }

    #[test]
    fn every_serving_subnet_is_covered_when_count_allows() {
        // The degradation ladder's cache-affinity bias relies on this:
        // with count >= serving_set.len(), each serving SubNet's budget
        // truncation appears as a candidate column (in serving-set order),
        // so no rung of the ladder is left without a coverable SubGraph.
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let budget = 2_000_000;
        let set = build_candidate_set(&net, &picks, budget, picks.len() + 4, 7);
        for sn in &picks {
            let truncated = net.subgraph_to_budget(&sn.graph, budget);
            assert!(
                truncated.is_empty() || set.contains(&truncated),
                "serving SubNet {} has no covering candidate",
                sn.name
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let a = build_candidate_set(&net, &picks, 2_000_000, 15, 9);
        let b = build_candidate_set(&net, &picks, 2_000_000, 15, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn can_build_large_sets_for_table6() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let set = build_candidate_set(&net, &picks, 2_000_000, 100, 11);
        assert!(set.len() >= 80, "only {} candidates", set.len());
    }
}
