//! Tenant-aware adaptation: per-tier degradation ladders plus a
//! feed-forward arrival predictor.
//!
//! The global controller in [`crate::adaptive`] applies one degradation
//! level to *all* traffic: when the queue hurts, a latency-critical
//! navigation query is shaped exactly as hard as a best-effort batch
//! analytics query. This module differentiates traffic classes:
//!
//! * every tenant is assigned a [`TenantTier`]
//!   (`LatencyCritical | Standard | BestEffort`);
//! * each tier owns an independent [`AdaptivePolicy`] ladder whose
//!   thresholds are biased by the tier — best-effort degrades *early*
//!   and upgrades *late*, latency-critical the reverse;
//! * a structural coupling rule keeps the ladders ordered
//!   (`LatencyCritical ≤ Standard ≤ BestEffort` degradation level at all
//!   times), so shedding accuracy always starts at the bottom of the
//!   priority order;
//! * an [`ArrivalPredictor`] watches the best-effort tier's inter-arrival
//!   statistics and converts detected MMPP burst states / diurnal crests
//!   into a feed-forward pressure boost, pre-degrading best-effort
//!   traffic *before* the queue builds.
//!
//! With no tenant configuration the serving runtime never constructs a
//! [`TenantPolicy`], so the pre-tenant behavior is preserved bit for bit;
//! with one, zero pressure and no predictor leave every ladder at level 0
//! and shaping is the identity — exactly the global controller at rest.

use crate::adaptive::{AdaptiveEvent, AdaptiveOptions, AdaptivePolicy, LoadSignal};
use crate::query::{Policy, Query};
use crate::table::LatencyTable;

/// Number of tenant slots with an explicit tier assignment in
/// [`TenantOptions`]. Tenant ids at or beyond this fall back to
/// [`TenantTier::Standard`]. A fixed-size array keeps the options (and
/// everything embedding them, e.g. the serving `SimConfig`) `Copy`.
pub const MAX_TENANT_SLOTS: usize = 8;

/// Priority tier of a tenant. Order is priority order: earlier variants
/// are shielded longer (degrade last, upgrade first) and shed last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum TenantTier {
    /// Shielded traffic: degrades only under severe pressure, recovers
    /// first, and is never shed while lower-priority work is droppable.
    LatencyCritical,
    /// The neutral tier — thresholds exactly match the configured base
    /// [`AdaptiveOptions`]. Tenants without an assignment land here.
    #[default]
    Standard,
    /// Deferrable traffic: degrades first (including pre-emptively, via
    /// the arrival predictor), upgrades last, and is shed first.
    BestEffort,
}

/// Number of distinct tiers.
pub const TIER_COUNT: usize = 3;

impl TenantTier {
    /// All tiers, in priority order (highest first).
    pub const ALL: [TenantTier; TIER_COUNT] =
        [TenantTier::LatencyCritical, TenantTier::Standard, TenantTier::BestEffort];

    /// Dense index of the tier: 0 = latency-critical … 2 = best-effort.
    pub fn index(self) -> usize {
        match self {
            TenantTier::LatencyCritical => 0,
            TenantTier::Standard => 1,
            TenantTier::BestEffort => 2,
        }
    }

    /// Shedding precedence: higher values are dropped first under
    /// admission pressure. Latency-critical is 0 (shed last).
    pub fn shed_precedence(self) -> u8 {
        self.index() as u8
    }

    /// Stable snake_case label used in reports and the serve-bench schema.
    pub fn name(self) -> &'static str {
        match self {
            TenantTier::LatencyCritical => "latency_critical",
            TenantTier::Standard => "standard",
            TenantTier::BestEffort => "best_effort",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<TenantTier> {
        TenantTier::ALL.into_iter().find(|t| t.name() == name)
    }
}

/// Knobs of the [`ArrivalPredictor`]. The two detectors compare arrival
/// rates at different horizons: the *burst* ratio divides the trend
/// window's mean gap by the burst window's (a sharp rate jump relative
/// to the recent past — an MMPP sojourn flip), while the *trend* ratio
/// divides the long-run baseline gap by the trend window's (a slow drift
/// above the long-run rate — a diurnal crest). `2.0` means "twice the
/// reference rate".
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct PredictorOptions {
    /// Sliding window (in arrivals) for burst detection. Short, so an
    /// MMPP burst onset is seen within roughly one window.
    pub burst_window: usize,
    /// Sliding window (in arrivals) for trend detection — diurnal ramps
    /// move slowly, so this is several times `burst_window`.
    pub trend_window: usize,
    /// Arrivals observed before any state transition is allowed; keeps
    /// the long-run baseline from being a handful of samples.
    pub warmup: usize,
    /// Rate ratio at or above which the predictor enters [`ArrivalState::Burst`].
    pub burst_enter: f64,
    /// Rate ratio below which it leaves `Burst` (hysteresis: < `burst_enter`).
    pub burst_exit: f64,
    /// Trend-window rate ratio at or above which it enters
    /// [`ArrivalState::Elevated`] (a diurnal crest).
    pub trend_enter: f64,
    /// Trend-window rate ratio below which it leaves `Elevated`.
    pub trend_exit: f64,
}

impl Default for PredictorOptions {
    fn default() -> Self {
        PredictorOptions {
            burst_window: 16,
            trend_window: 64,
            warmup: 32,
            burst_enter: 3.0,
            burst_exit: 2.0,
            trend_enter: 1.8,
            trend_exit: 1.4,
        }
    }
}

impl PredictorOptions {
    /// Checks internal consistency; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.burst_window < 2 || self.trend_window < 2 {
            return Err("predictor windows must hold at least 2 gaps".into());
        }
        if self.trend_window < self.burst_window {
            return Err("trend_window must be at least burst_window".into());
        }
        if self.warmup < self.burst_window {
            return Err("warmup must cover at least one burst_window".into());
        }
        for (name, v) in [
            ("burst_enter", self.burst_enter),
            ("burst_exit", self.burst_exit),
            ("trend_enter", self.trend_enter),
            ("trend_exit", self.trend_exit),
        ] {
            if !v.is_finite() || v <= 1.0 {
                return Err(format!("predictor {name} must be a finite ratio > 1"));
            }
        }
        if self.burst_exit >= self.burst_enter {
            return Err("burst_exit must be below burst_enter (hysteresis)".into());
        }
        if self.trend_exit >= self.trend_enter {
            return Err("trend_exit must be below trend_enter (hysteresis)".into());
        }
        Ok(())
    }
}

/// Arrival-process state detected by the [`ArrivalPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArrivalState {
    /// Recent rate is consistent with the long-run baseline.
    #[default]
    Calm,
    /// A sustained, moderate rate increase over the trend window — the
    /// crest of a diurnal ramp.
    Elevated,
    /// A sharp rate increase over the burst window — an MMPP burst
    /// sojourn.
    Burst,
}

impl ArrivalState {
    /// Feed-forward pressure contributed by the state.
    fn boost(self) -> f64 {
        match self {
            ArrivalState::Calm => 0.0,
            ArrivalState::Elevated => 0.6,
            ArrivalState::Burst => 1.0,
        }
    }
}

/// Feed-forward detector over inter-arrival gaps.
///
/// Maintains the cumulative mean gap (the long-run baseline) and two
/// sliding windows of recent gaps. Two rate ratios drive a three-state
/// machine with hysteresis:
///
/// * **burst ratio** `trend_mean_gap / burst_mean_gap` — the short
///   window against the recent past. An MMPP sojourn flip spikes it
///   within one burst window; a diurnal crest, which moves both windows
///   together, leaves it near 1, so a crest can never masquerade as a
///   burst.
/// * **trend ratio** `baseline_mean_gap / trend_mean_gap` — the recent
///   past against the long run. A diurnal ramp raises it slowly toward
///   the crest.
///
/// The detected [`ArrivalState`] maps to a pressure
/// [`boost_at`](Self::boost_at) that the tenant layer mixes into the
/// best-effort tier's pressure — degradation starts when the *arrival
/// process* turns hostile, not when the queue finally reflects it.
///
/// The reference horizons adapt: a burst that outlives the trend window
/// stops reading as a burst (decaying to `Elevated` while the long-run
/// baseline still lags), and one that becomes the cumulative baseline
/// decays to `Calm` — a sustained new normal is capacity planning's
/// problem, not admission control's.
#[derive(Debug, Clone)]
pub struct ArrivalPredictor {
    opts: PredictorOptions,
    last_arrival_ms: Option<f64>,
    gap_sum: f64,
    gap_count: usize,
    burst_ring: Vec<f64>,
    trend_ring: Vec<f64>,
    burst_sum: f64,
    trend_sum: f64,
    next_burst: usize,
    next_trend: usize,
    state: ArrivalState,
    transitions: usize,
}

impl ArrivalPredictor {
    /// Builds a predictor. Panics if `opts` fails
    /// [`PredictorOptions::validate`].
    pub fn new(opts: PredictorOptions) -> Self {
        if let Err(e) = opts.validate() {
            panic!("invalid PredictorOptions: {e}");
        }
        ArrivalPredictor {
            opts,
            last_arrival_ms: None,
            gap_sum: 0.0,
            gap_count: 0,
            burst_ring: Vec::with_capacity(opts.burst_window),
            trend_ring: Vec::with_capacity(opts.trend_window),
            burst_sum: 0.0,
            trend_sum: 0.0,
            next_burst: 0,
            next_trend: 0,
            state: ArrivalState::Calm,
            transitions: 0,
        }
    }

    /// Folds one arrival timestamp (milliseconds, non-decreasing) into
    /// the detector and returns the state *after* the observation.
    pub fn observe_arrival(&mut self, now_ms: f64) -> ArrivalState {
        let gap = match self.last_arrival_ms {
            None => {
                self.last_arrival_ms = Some(now_ms);
                return self.state;
            }
            Some(prev) => (now_ms - prev).max(0.0),
        };
        self.last_arrival_ms = Some(now_ms);
        self.gap_sum += gap;
        self.gap_count += 1;
        push_ring(
            &mut self.burst_ring,
            &mut self.burst_sum,
            &mut self.next_burst,
            self.opts.burst_window,
            gap,
        );
        push_ring(
            &mut self.trend_ring,
            &mut self.trend_sum,
            &mut self.next_trend,
            self.opts.trend_window,
            gap,
        );
        if self.gap_count < self.opts.warmup {
            return self.state;
        }
        let baseline = self.gap_sum / self.gap_count as f64;
        let trend_full = self.trend_ring.len() == self.opts.trend_window;
        let trend_mean =
            if trend_full { Some(self.trend_sum / self.opts.trend_window as f64) } else { None };
        let r_burst = trend_mean
            .and_then(|t| rate_ratio(t, &self.burst_ring, self.burst_sum, self.opts.burst_window));
        let r_trend =
            rate_ratio(baseline, &self.trend_ring, self.trend_sum, self.opts.trend_window);
        let next = match self.state {
            ArrivalState::Burst => {
                if let Some(r) = r_burst {
                    if r < self.opts.burst_exit {
                        match r_trend {
                            Some(rt) if rt >= self.opts.trend_enter => ArrivalState::Elevated,
                            _ => ArrivalState::Calm,
                        }
                    } else {
                        ArrivalState::Burst
                    }
                } else {
                    ArrivalState::Burst
                }
            }
            ArrivalState::Elevated => {
                if matches!(r_burst, Some(r) if r >= self.opts.burst_enter) {
                    ArrivalState::Burst
                } else if matches!(r_trend, Some(r) if r < self.opts.trend_exit) {
                    ArrivalState::Calm
                } else {
                    ArrivalState::Elevated
                }
            }
            ArrivalState::Calm => {
                if matches!(r_burst, Some(r) if r >= self.opts.burst_enter) {
                    ArrivalState::Burst
                } else if matches!(r_trend, Some(r) if r >= self.opts.trend_enter) {
                    ArrivalState::Elevated
                } else {
                    ArrivalState::Calm
                }
            }
        };
        if next != self.state {
            self.state = next;
            self.transitions += 1;
        }
        self.state
    }

    /// Current detected state.
    pub fn state(&self) -> ArrivalState {
        self.state
    }

    /// Total state transitions so far (any direction).
    pub fn transitions(&self) -> usize {
        self.transitions
    }

    /// Arrivals observed so far.
    pub fn arrivals(&self) -> usize {
        self.gap_count + usize::from(self.last_arrival_ms.is_some())
    }

    /// Feed-forward pressure boost at `now_ms`: 1.0 in `Burst`, 0.6 in
    /// `Elevated`, 0.0 in `Calm`. If the *open* gap (time since the last
    /// arrival) already exceeds the long-run mean gap, the boost decays
    /// to zero regardless of state — silence is its own all-clear, and
    /// the state machine only advances on arrivals.
    pub fn boost_at(&self, now_ms: f64) -> f64 {
        let boost = self.state.boost();
        if boost == 0.0 {
            return 0.0;
        }
        if self.gap_count > 0 {
            let baseline = self.gap_sum / self.gap_count as f64;
            if let Some(last) = self.last_arrival_ms {
                if now_ms - last > baseline {
                    return 0.0;
                }
            }
        }
        boost
    }
}

/// Ring-buffer push: grows until `cap`, then overwrites round-robin,
/// keeping `sum` in sync.
fn push_ring(ring: &mut Vec<f64>, sum: &mut f64, next: &mut usize, cap: usize, gap: f64) {
    if ring.len() < cap {
        ring.push(gap);
        *sum += gap;
    } else {
        *sum += gap - ring[*next];
        ring[*next] = gap;
        *next = (*next + 1) % cap;
    }
}

/// `baseline_gap / window_mean_gap`, only once the window is full (a
/// partially filled window is too noisy to act on). A zero window mean
/// (simultaneous arrivals) reads as an unbounded rate ratio.
fn rate_ratio(baseline: f64, ring: &[f64], sum: f64, cap: usize) -> Option<f64> {
    if ring.len() < cap || baseline <= 0.0 {
        return None;
    }
    let mean = sum / cap as f64;
    if mean <= 0.0 {
        return Some(f64::INFINITY);
    }
    Some(baseline / mean)
}

/// Configuration of the tenant layer. `Copy`, so it can live inside the
/// serving `SimConfig` without breaking by-value plumbing.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct TenantOptions {
    /// Base controller knobs. The `Standard` tier uses these verbatim;
    /// the outer tiers scale the thresholds by [`shield`](Self::shield).
    pub base: AdaptiveOptions,
    /// Tier assignment per tenant id (index = tenant id). Ids at or
    /// beyond [`MAX_TENANT_SLOTS`] default to [`TenantTier::Standard`].
    pub tiers: [TenantTier; MAX_TENANT_SLOTS],
    /// Feed-forward arrival predictor over the best-effort tier's
    /// arrivals; `None` disables prediction (purely reactive tiers).
    pub predictor: Option<PredictorOptions>,
    /// Threshold bias between tiers (≥ 1). Latency-critical thresholds
    /// are the base thresholds × `shield` (degrades late, upgrades
    /// early); best-effort divides by it (degrades early, upgrades
    /// late). `1.0` makes all tiers share the base thresholds — priority
    /// then only affects shedding order, batch affinity and the ladder
    /// ordering rule.
    pub shield: f64,
}

impl Default for TenantOptions {
    fn default() -> Self {
        TenantOptions {
            base: AdaptiveOptions::default(),
            tiers: [TenantTier::Standard; MAX_TENANT_SLOTS],
            predictor: None,
            shield: 1.5,
        }
    }
}

impl TenantOptions {
    /// Assigns `tier` to `tenant`. Panics if `tenant >= MAX_TENANT_SLOTS`.
    #[must_use]
    pub fn with_tier(mut self, tenant: u32, tier: TenantTier) -> Self {
        let slot = tenant as usize;
        assert!(slot < MAX_TENANT_SLOTS, "tenant id {tenant} exceeds MAX_TENANT_SLOTS");
        self.tiers[slot] = tier;
        self
    }

    /// Replaces the base controller knobs.
    #[must_use]
    pub fn with_base(mut self, base: AdaptiveOptions) -> Self {
        self.base = base;
        self
    }

    /// Enables (Some) or disables (None) the arrival predictor.
    #[must_use]
    pub fn with_predictor(mut self, predictor: Option<PredictorOptions>) -> Self {
        self.predictor = predictor;
        self
    }

    /// Sets the inter-tier threshold bias (≥ 1).
    #[must_use]
    pub fn with_shield(mut self, shield: f64) -> Self {
        self.shield = shield;
        self
    }

    /// Threshold multiplier for a tier: `shield` for latency-critical,
    /// 1 for standard, `1 / shield` for best-effort.
    pub fn tier_factor(&self, tier: TenantTier) -> f64 {
        match tier {
            TenantTier::LatencyCritical => self.shield,
            TenantTier::Standard => 1.0,
            TenantTier::BestEffort => 1.0 / self.shield,
        }
    }

    /// Tier of a tenant id (out-of-range ids are `Standard`).
    pub fn tier_of(&self, tenant: u32) -> TenantTier {
        self.tiers.get(tenant as usize).copied().unwrap_or(TenantTier::Standard)
    }

    /// Checks internal consistency; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        if !self.shield.is_finite() || self.shield < 1.0 {
            return Err("tenant shield must be a finite factor >= 1".into());
        }
        if let Some(p) = &self.predictor {
            p.validate()?;
        }
        Ok(())
    }
}

/// Load observation handed to [`TenantPolicy::observe`]: the shared
/// (whole-queue) signal plus optional per-tier refinements. A tier's
/// effective pressure is the max of the shared pressure, its own
/// signal's pressure, and (best-effort only) the predictor boost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierSignals {
    /// Whole-system signal (total queue depth, aggregate tail, head slack).
    pub shared: LoadSignal,
    /// Optional per-tier signals, indexed by [`TenantTier::index`].
    pub tiers: [Option<LoadSignal>; TIER_COUNT],
}

impl TierSignals {
    /// A shared-only observation (no per-tier refinement).
    pub fn uniform(shared: LoadSignal) -> Self {
        TierSignals { shared, tiers: [None; TIER_COUNT] }
    }

    /// Attaches a per-tier signal.
    #[must_use]
    pub fn with_tier(mut self, tier: TenantTier, signal: LoadSignal) -> Self {
        self.tiers[tier.index()] = Some(signal);
        self
    }
}

/// A level change enacted by one tier's ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantEvent {
    /// The tier that stepped.
    pub tier: TenantTier,
    /// The underlying controller event (time, pressure, new level).
    pub event: AdaptiveEvent,
}

/// The tenant-aware controller: one [`AdaptivePolicy`] ladder per tier,
/// coupled so degradation depth is always ordered
/// `LatencyCritical ≤ Standard ≤ BestEffort`.
///
/// Per [`observe`](Self::observe) each tier still obeys the global
/// controller's contract — at most a ±1 step, one step per dwell — but a
/// step is additionally *vetoed* unless the ordering invariant survives
/// it: a tier may only degrade once every lower-priority tier is at
/// least as deep as the level it would land on, and may only upgrade
/// once every higher-priority tier is at least as shallow. Vetoed steps
/// do not consume the tier's dwell.
#[derive(Debug)]
pub struct TenantPolicy {
    opts: TenantOptions,
    tiers: [AdaptivePolicy; TIER_COUNT],
    predictor: Option<ArrivalPredictor>,
}

impl TenantPolicy {
    /// Builds the per-tier ladders from `table`. Panics if `opts` fails
    /// [`TenantOptions::validate`] or the table is empty (mirroring
    /// [`AdaptivePolicy::new`]); the engine builder validates first and
    /// reports errors gracefully.
    pub fn new(table: &LatencyTable, policy: Policy, opts: TenantOptions) -> Self {
        if let Err(e) = opts.validate() {
            panic!("invalid TenantOptions: {e}");
        }
        let ladder = |tier: TenantTier| {
            let f = opts.tier_factor(tier);
            let biased = opts
                .base
                .with_thresholds(opts.base.degrade_threshold * f, opts.base.upgrade_threshold * f);
            AdaptivePolicy::new(table, policy, biased)
        };
        TenantPolicy {
            opts,
            tiers: [
                ladder(TenantTier::LatencyCritical),
                ladder(TenantTier::Standard),
                ladder(TenantTier::BestEffort),
            ],
            predictor: opts.predictor.map(ArrivalPredictor::new),
        }
    }

    /// Effective pressure of a tier under `signals` at its own scale.
    fn effective_pressure(&self, tier: TenantTier, signals: &TierSignals) -> f64 {
        let scale = self.tiers[tier.index()].scale_ms();
        let mut p = signals.shared.pressure(scale);
        if let Some(sig) = &signals.tiers[tier.index()] {
            p = p.max(sig.pressure(scale));
        }
        if tier == TenantTier::BestEffort {
            if let Some(pred) = &self.predictor {
                p = p.max(pred.boost_at(signals.shared.now_ms));
            }
        }
        p
    }

    /// Degrade/upgrade thresholds of a tier.
    fn thresholds(&self, tier: TenantTier) -> (f64, f64) {
        let f = self.opts.tier_factor(tier);
        (self.opts.base.degrade_threshold * f, self.opts.base.upgrade_threshold * f)
    }

    /// Folds one observation into every tier's ladder and returns the
    /// enacted changes (possibly several, one per tier), in a fixed
    /// deterministic order: upgrades in priority order (latency-critical
    /// first — recovery flows top-down), then degrades in reverse
    /// priority order (best-effort first — pain flows bottom-up).
    pub fn observe(&mut self, signals: &TierSignals) -> Vec<TenantEvent> {
        let now = signals.shared.now_ms;
        let mut events = Vec::new();
        // Upgrade pass: a tier rises only if every higher-priority tier
        // already sits at or above (shallower than) the target level.
        for tier in TenantTier::ALL {
            let p = self.effective_pressure(tier, signals);
            let (_, upgrade) = self.thresholds(tier);
            let i = tier.index();
            if p <= upgrade && self.tiers[i].level() > 0 {
                let target = self.tiers[i].level() - 1;
                let ok = (0..i).all(|h| self.tiers[h].level() <= target);
                if ok {
                    if let Some(event) = self.tiers[i].observe_pressure(now, p) {
                        events.push(TenantEvent { tier, event });
                    }
                }
            }
        }
        // Degrade pass: a tier sinks only if every lower-priority tier
        // is already at least as deep as the target level.
        for tier in TenantTier::ALL.into_iter().rev() {
            let p = self.effective_pressure(tier, signals);
            let (degrade, _) = self.thresholds(tier);
            let i = tier.index();
            if p >= degrade && self.tiers[i].level() < self.tiers[i].max_level() {
                let target = self.tiers[i].level() + 1;
                let ok = (i + 1..TIER_COUNT).all(|l| self.tiers[l].level() >= target);
                if ok {
                    if let Some(event) = self.tiers[i].observe_pressure(now, p) {
                        events.push(TenantEvent { tier, event });
                    }
                }
            }
        }
        events
    }

    /// Feeds one arrival of `tier` to the predictor (best-effort
    /// arrivals only; other tiers are ignored).
    pub fn observe_arrival(&mut self, tier: TenantTier, now_ms: f64) {
        if tier == TenantTier::BestEffort {
            if let Some(pred) = &mut self.predictor {
                pred.observe_arrival(now_ms);
            }
        }
    }

    /// Shapes `query` through its tier's ladder (identity at level 0).
    /// `cached` is the resident cache column index, as in
    /// [`AdaptivePolicy::shape`].
    pub fn shape(
        &self,
        tier: TenantTier,
        query: &Query,
        table: &LatencyTable,
        cached: usize,
    ) -> Query {
        self.tiers[tier.index()].shape(query, table, cached)
    }

    /// Dynamic batch cap: the *deepest* tier's cap, so batch sizing
    /// follows the most degraded traffic class.
    pub fn batch_cap(&self, base: usize) -> usize {
        let deepest = self.tiers.iter().max_by_key(|t| t.level()).expect("TIER_COUNT > 0 ladders");
        deepest.batch_cap(base)
    }

    /// Tier of a tenant id.
    pub fn tier_of(&self, tenant: u32) -> TenantTier {
        self.opts.tier_of(tenant)
    }

    /// Current degradation level of a tier.
    pub fn level(&self, tier: TenantTier) -> usize {
        self.tiers[tier.index()].level()
    }

    /// Degrade steps taken by a tier so far.
    pub fn degrades(&self, tier: TenantTier) -> usize {
        self.tiers[tier.index()].degrades()
    }

    /// Upgrade steps taken by a tier so far.
    pub fn upgrades(&self, tier: TenantTier) -> usize {
        self.tiers[tier.index()].upgrades()
    }

    /// Pressure scale (shared by all tiers — derived from the table).
    pub fn scale_ms(&self) -> f64 {
        self.tiers[TenantTier::Standard.index()].scale_ms()
    }

    /// Dwell (shared by all tiers — derived from the base options).
    pub fn dwell_ms(&self) -> f64 {
        self.tiers[TenantTier::Standard.index()].dwell_ms()
    }

    /// The configuration this policy was built from.
    pub fn options(&self) -> &TenantOptions {
        &self.opts
    }

    /// The arrival predictor, when enabled.
    pub fn predictor(&self) -> Option<&ArrivalPredictor> {
        self.predictor.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::test_support::{subnet, synthetic_latency};
    use crate::table::EMPTY_COLUMN;

    fn make_table(n: usize) -> LatencyTable {
        let subnets: Vec<_> =
            (0..n).map(|i| subnet(&format!("s{i}"), i + 1, 0.70 + 0.02 * i as f64)).collect();
        let candidates = vec![subnets[0].graph.clone(), subnets[n - 1].graph.clone()];
        LatencyTable::build(&subnets, candidates, synthetic_latency)
    }

    fn signal_at(now: f64, depth: f64, p99: f64) -> LoadSignal {
        LoadSignal {
            now_ms: now,
            queue_depth: depth,
            queue_capacity: 32,
            p99_ms: p99,
            head_slack_ms: f64::INFINITY,
            head_budget_ms: f64::INFINITY,
            quarantined_frac: 0.0,
        }
    }

    fn hot(now: f64) -> TierSignals {
        TierSignals::uniform(signal_at(now, 32.0, 1.0e6))
    }

    fn cold(now: f64) -> TierSignals {
        TierSignals::uniform(LoadSignal::idle(now))
    }

    fn policy(opts: TenantOptions) -> TenantPolicy {
        TenantPolicy::new(&make_table(5), Policy::StrictAccuracy, opts)
    }

    // ---- deterministic pseudo-random gap generation (tests only) ----

    struct SplitMix(u64);

    impl SplitMix {
        fn next_f64(&mut self) -> f64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            // (0, 1]: never exactly zero so ln() is finite.
            ((z >> 11) as f64 + 1.0) / (1u64 << 53) as f64
        }

        fn exp_gap(&mut self, mean: f64) -> f64 {
            -mean * self.next_f64().ln()
        }
    }

    #[test]
    fn predictor_stays_calm_on_steady_poisson() {
        // Seeded, deterministic: a homogeneous Poisson process must never
        // trip a state transition, across several seeds.
        for seed in 1u64..=8 {
            let mut rng = SplitMix(seed);
            let mut pred = ArrivalPredictor::new(PredictorOptions::default());
            let mut now = 0.0;
            for _ in 0..1500 {
                now += rng.exp_gap(10.0);
                pred.observe_arrival(now);
            }
            assert_eq!(pred.transitions(), 0, "false transition on steady Poisson, seed {seed}");
            assert_eq!(pred.state(), ArrivalState::Calm);
        }
    }

    #[test]
    fn predictor_detects_mmpp_burst_within_bounded_lag() {
        let opts = PredictorOptions::default();
        for seed in 1u64..=4 {
            let mut rng = SplitMix(0xB00 + seed);
            let mut pred = ArrivalPredictor::new(opts);
            let mut now = 0.0;
            // Calm sojourn: 200 arrivals at mean gap 10 ms.
            for _ in 0..200 {
                now += rng.exp_gap(10.0);
                pred.observe_arrival(now);
                assert_ne!(pred.state(), ArrivalState::Burst, "burst before onset, seed {seed}");
            }
            // Burst sojourn: 5x the rate. Detection lag must be bounded
            // by ~2 burst windows of arrivals.
            let mut lag = None;
            for k in 0..200 {
                now += rng.exp_gap(2.0);
                if pred.observe_arrival(now) == ArrivalState::Burst {
                    lag = Some(k + 1);
                    break;
                }
            }
            let lag = lag.expect("burst never detected");
            assert!(lag <= 2 * opts.burst_window, "lag {lag} too large, seed {seed}");
            // Back to calm: once the windows flush the sojourn, the
            // state must fully decay (the baseline is still near 10).
            for _ in 0..200 {
                now += rng.exp_gap(10.0);
                pred.observe_arrival(now);
            }
            assert_eq!(pred.state(), ArrivalState::Calm, "burst never cleared, seed {seed}");
        }
    }

    #[test]
    fn predictor_flags_diurnal_crest_as_elevated_not_burst() {
        // Seeded diurnal ramp: gaps modulated by a slow sinusoid, crest
        // rate ~2.2x the long-run (harmonic-mean) rate. The trend window
        // must read the crest as Elevated; the burst detector — which
        // compares the short window against the *trend* window, both of
        // which ride the ramp together — must stay quiet throughout.
        let opts = PredictorOptions::default();
        let mut pred = ArrivalPredictor::new(opts);
        let mut rng = SplitMix(0xD1);
        let mut now = 0.0;
        let period = 600;
        let mut saw_elevated = false;
        for i in 0..3 * period {
            let phase = 2.0 * std::f64::consts::PI * (i % period) as f64 / period as f64;
            // Rate swings between 0.5x and 2.5x the midpoint rate.
            let rate_scale = 1.5 - phase.cos();
            let mean_gap = 10.0 / rate_scale;
            now += rng.exp_gap(mean_gap);
            let state = pred.observe_arrival(now);
            assert_ne!(state, ArrivalState::Burst, "diurnal crest misread as burst at {i}");
            if state == ArrivalState::Elevated {
                saw_elevated = true;
            }
        }
        assert!(saw_elevated, "diurnal crest never detected");
    }

    #[test]
    fn predictor_is_deterministic_and_boost_is_monotone() {
        let run = || {
            let mut rng = SplitMix(7);
            let mut pred = ArrivalPredictor::new(PredictorOptions::default());
            let mut now = 0.0;
            let mut states = Vec::new();
            for i in 0..400 {
                let mean = if (100..180).contains(&i) { 2.0 } else { 10.0 };
                now += rng.exp_gap(mean);
                states.push(pred.observe_arrival(now));
            }
            (states, pred.transitions())
        };
        assert_eq!(run(), run(), "predictor is not deterministic");
        assert!(ArrivalState::Calm.boost() < ArrivalState::Elevated.boost());
        assert!(ArrivalState::Elevated.boost() < ArrivalState::Burst.boost());
    }

    #[test]
    fn predictor_boost_decays_on_silence() {
        let mut pred = ArrivalPredictor::new(PredictorOptions::default());
        let mut now = 0.0;
        for _ in 0..64 {
            now += 10.0;
            pred.observe_arrival(now);
        }
        for _ in 0..32 {
            now += 1.0;
            pred.observe_arrival(now);
        }
        assert_eq!(pred.state(), ArrivalState::Burst);
        assert_eq!(pred.boost_at(now), 1.0);
        // One long-run mean gap of silence zeroes the feed-forward even
        // though no arrival has advanced the state machine.
        assert_eq!(pred.boost_at(now + 100.0), 0.0);
        assert_eq!(pred.state(), ArrivalState::Burst);
    }

    #[test]
    fn degradation_depth_is_ordered_across_tiers() {
        let mut pol = policy(TenantOptions::default());
        let mut now = 0.0;
        for step in 0..40 {
            now += pol.dwell_ms().max(1.0) + 1.0;
            let signals = if step % 7 < 5 { hot(now) } else { cold(now) };
            pol.observe(&signals);
            let lc = pol.level(TenantTier::LatencyCritical);
            let st = pol.level(TenantTier::Standard);
            let be = pol.level(TenantTier::BestEffort);
            assert!(lc <= st && st <= be, "ordering violated: {lc} {st} {be}");
        }
    }

    #[test]
    fn best_effort_degrades_first_and_recovers_last() {
        // Default shield 1.5 biases the base 0.4/0.15 band per tier:
        // degrade at 0.267 (BE) / 0.4 (Std) / 0.6 (LC), upgrade at
        // 0.1 / 0.15 / 0.225. Pressures *between* tier thresholds move
        // only the outer tiers.
        let mut pol = policy(TenantOptions::default());
        let dwell = pol.dwell_ms().max(1.0);
        let mut now = 0.0;
        // Mild pressure (0.3): above BE's degrade threshold only.
        now += dwell + 1.0;
        let events = pol.observe(&TierSignals::uniform(signal_at(now, 9.6, 0.0)));
        assert_eq!(events.len(), 1);
        assert_eq!(pol.level(TenantTier::BestEffort), 1);
        assert_eq!(pol.level(TenantTier::Standard), 0, "mild pressure spares standard");
        assert_eq!(pol.level(TenantTier::LatencyCritical), 0);
        // Saturated pressure pins everyone at max (ordering preserved).
        for _ in 0..20 {
            now += dwell + 1.0;
            pol.observe(&hot(now));
        }
        let max = pol.level(TenantTier::BestEffort);
        assert!(max > 0);
        assert_eq!(pol.level(TenantTier::LatencyCritical), max);
        // Partial recovery (0.2): below LC's upgrade threshold only —
        // latency-critical rises first, best-effort recovers last.
        now += dwell + 1.0;
        pol.observe(&TierSignals::uniform(signal_at(now, 6.4, 0.0)));
        assert_eq!(pol.level(TenantTier::LatencyCritical), max - 1);
        assert_eq!(pol.level(TenantTier::Standard), max);
        assert_eq!(pol.level(TenantTier::BestEffort), max, "best-effort must recover last");
    }

    #[test]
    fn zero_pressure_and_no_predictor_is_identity() {
        let table = make_table(5);
        let mut pol = TenantPolicy::new(&table, Policy::StrictAccuracy, TenantOptions::default());
        let mut now = 0.0;
        for _ in 0..10 {
            now += pol.dwell_ms().max(1.0) + 1.0;
            assert!(pol.observe(&cold(now)).is_empty());
        }
        for tier in TenantTier::ALL {
            assert_eq!(pol.level(tier), 0);
        }
        let q = Query::new(1, 0.77, 100.0);
        for tier in TenantTier::ALL {
            assert_eq!(pol.shape(tier, &q, &table, EMPTY_COLUMN), q);
        }
    }

    #[test]
    fn predictor_pre_degrades_best_effort_before_queue_builds() {
        let opts = TenantOptions::default()
            .with_predictor(Some(PredictorOptions::default()))
            .with_tier(1, TenantTier::BestEffort);
        let mut pol = policy(opts);
        let dwell = pol.dwell_ms().max(1.0);
        // Calm arrivals establish the baseline.
        let mut now = 0.0;
        for _ in 0..64 {
            now += 10.0;
            pol.observe_arrival(TenantTier::BestEffort, now);
        }
        // Burst onset: queue still empty (idle signal) but the predictor
        // sees the rate jump and pre-degrades best-effort.
        for _ in 0..32 {
            now += 1.0;
            pol.observe_arrival(TenantTier::BestEffort, now);
        }
        now += dwell + 1.0;
        let events = pol.observe(&cold(now));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].tier, TenantTier::BestEffort);
        assert_eq!(pol.level(TenantTier::BestEffort), 1);
        assert_eq!(pol.level(TenantTier::LatencyCritical), 0);
    }

    #[test]
    fn batch_cap_follows_deepest_tier() {
        let mut pol = policy(TenantOptions::default());
        assert_eq!(pol.batch_cap(8), 8);
        let mut now = pol.dwell_ms().max(1.0) + 1.0;
        pol.observe(&hot(now));
        assert_eq!(pol.level(TenantTier::BestEffort), 1);
        assert_eq!(pol.batch_cap(8), 4);
        now += pol.dwell_ms().max(1.0) + 1.0;
        pol.observe(&cold(now));
        assert_eq!(pol.batch_cap(8), 8);
    }

    #[test]
    fn tier_names_round_trip_and_tenancy_defaults_to_standard() {
        for tier in TenantTier::ALL {
            assert_eq!(TenantTier::from_name(tier.name()), Some(tier));
        }
        assert_eq!(TenantTier::from_name("premium"), None);
        let opts = TenantOptions::default().with_tier(0, TenantTier::LatencyCritical);
        assert_eq!(opts.tier_of(0), TenantTier::LatencyCritical);
        assert_eq!(opts.tier_of(7), TenantTier::Standard);
        assert_eq!(opts.tier_of(999), TenantTier::Standard);
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        assert!(TenantOptions::default().validate().is_ok());
        assert!(TenantOptions::default().with_shield(0.5).validate().is_err());
        assert!(TenantOptions::default().with_shield(f64::NAN).validate().is_err());
        let mut p = PredictorOptions::default();
        p.burst_exit = 3.5; // above burst_enter: no hysteresis band
        assert!(TenantOptions::default().with_predictor(Some(p)).validate().is_err());
        let mut p = PredictorOptions::default();
        p.trend_enter = 0.9; // a ratio <= 1 can never mean "load is up"
        assert!(p.validate().is_err());
        let mut p = PredictorOptions::default();
        p.warmup = 4; // shorter than the burst window
        assert!(p.validate().is_err());
    }
}
