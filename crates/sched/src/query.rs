//! Queries and scheduling policies.

use serde::{Deserialize, Serialize};

/// One inference query annotated with its `(Accuracy, Latency)` constraint
/// pair `(Aₜ, Lₜ)` (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Monotone query index `t`.
    pub id: u64,
    /// Minimum acceptable top-1 accuracy, in `[0, 1]`.
    pub accuracy_constraint: f64,
    /// Maximum acceptable serving latency in milliseconds.
    pub latency_constraint_ms: f64,
}

impl Query {
    /// Creates a query.
    #[must_use]
    pub fn new(id: u64, accuracy_constraint: f64, latency_constraint_ms: f64) -> Self {
        Self { id, accuracy_constraint, latency_constraint_ms }
    }
}

/// Which constraint the scheduler treats as hard (Algorithm 1).
///
/// * [`Policy::StrictAccuracy`] — serve the minimum-latency SubNet among
///   those with accuracy ≥ `Aₜ`; the latency constraint may be missed.
/// * [`Policy::StrictLatency`] — serve the maximum-accuracy SubNet among
///   those with latency ≤ `Lₜ` under the current cache state; the accuracy
///   constraint may be missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Accuracy is a hard constraint.
    StrictAccuracy,
    /// Latency is a hard constraint.
    StrictLatency,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_carries_constraints() {
        let q = Query::new(3, 0.78, 12.5);
        assert_eq!(q.id, 3);
        assert_eq!(q.accuracy_constraint, 0.78);
        assert_eq!(q.latency_constraint_ms, 12.5);
    }

    #[test]
    fn policies_are_distinct() {
        assert_ne!(Policy::StrictAccuracy, Policy::StrictLatency);
    }
}
