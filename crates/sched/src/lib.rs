//! # sushi-sched
//!
//! **SushiSched + SushiAbs**: the software half of the SUSHI co-design
//! (MLSys'23, §3).
//!
//! * [`table::LatencyTable`] — SushiAbs: a SubNet × cached-SubGraph latency
//!   lookup table. It is the *only* interface between the scheduler and any
//!   accelerator; this crate deliberately does **not** depend on
//!   `sushi-accel`, reproducing the paper's claim that the scheduler
//!   policy "could then generalize to any hardware that is able to support
//!   WS-DNN inference".
//! * [`scheduler::Scheduler`] — Algorithm 1: per-query SubNet selection
//!   under a strict-accuracy or strict-latency policy, and an amortized
//!   cache decision every `Q` queries via the `AvgNet` running average.
//! * [`candidates`] — construction of the bounded SubGraph candidate set
//!   `S` (§3.2's requirement R1).
//!
//! Everything that needs a scheduler *and* an accelerator — the serving
//! stack, the event-driven serving runtime, experiment regenerators —
//! lives in `sushi-core`, never here (see the paper-to-code map in
//! `docs/ARCHITECTURE.md`). Under the serving runtime, `decide` is called
//! once per *arrival* (in arrival order) and its cache decisions are
//! enacted lazily on a worker pool; nothing about that loop leaks back
//! into this crate.
//!
//! # Example
//!
//! ```
//! use sushi_sched::query::{Policy, Query};
//! use sushi_sched::scheduler::{CacheSelection, Scheduler};
//! use sushi_sched::table::LatencyTable;
//! use sushi_sched::candidates::build_candidate_set;
//! use sushi_wsnet::zoo;
//!
//! let net = zoo::mobilenet_v3_supernet();
//! let picks = zoo::paper_subnets(&net);
//! let cands = build_candidate_set(&net, &picks, 1_700_000, 8, 42);
//!
//! // Any latency oracle works — here, a crude FLOPs-proportional one.
//! let table = LatencyTable::build(&picks, cands, |sn, cached| {
//!     let hit = cached.map_or(0.0, |g| sushi_wsnet::encoding::overlap_ratio(&sn.graph, g));
//!     sn.gflops() * 10.0 * (1.0 - 0.25 * hit)
//! });
//!
//! let mut sched = Scheduler::new(table, Policy::StrictAccuracy, CacheSelection::MinDistanceToAvg, 8);
//! let decision = sched.decide(&Query::new(0, 0.78, 10.0));
//! assert!(sched.table().row(decision.subnet_row).accuracy >= 0.78);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod candidates;
pub mod query;
pub mod scheduler;
pub mod table;
pub mod tenant;

pub use adaptive::{AdaptiveEvent, AdaptiveOptions, AdaptivePolicy, LoadSignal};
pub use query::{Policy, Query};
pub use scheduler::{CacheSelection, Decision, Scheduler};
pub use table::{LatencyTable, EMPTY_COLUMN};
pub use tenant::{
    ArrivalPredictor, ArrivalState, PredictorOptions, TenantEvent, TenantOptions, TenantPolicy,
    TenantTier, TierSignals, MAX_TENANT_SLOTS, TIER_COUNT,
};
