//! # sushi
//!
//! Facade crate for the SUSHI reproduction (MLSys'23, *Subgraph Stationary
//! Hardware-Software Inference Co-Design*): re-exports the workspace crates
//! under one roof and hosts the runnable examples and cross-crate
//! integration tests.
//!
//! | Component | Crate | Paper section |
//! |-----------|-------|---------------|
//! | Tensor / int8 op substrate | [`tensor`] | §4 (datapath golden model) |
//! | Weight-shared SuperNets | [`wsnet`] | §2.1 |
//! | SushiAccel simulator | [`accel`] | §4 |
//! | SushiSched + SushiAbs | [`sched`] | §3 |
//! | Serving stack + experiments | [`core`] | §5 |
//!
//! # Quickstart
//!
//! ```
//! use sushi::core::engine::EngineBuilder;
//! use sushi::core::stream::{uniform_stream, ConstraintSpace};
//!
//! let mut engine = EngineBuilder::new()
//!     .q_window(10) // cache window Q
//!     .candidates(8) // SubGraph candidates
//!     .seed(42)
//!     .build()?;
//! let space = ConstraintSpace { acc_lo: 0.76, acc_hi: 0.79, lat_lo: 2.0, lat_hi: 30.0 };
//! for record in engine.serve_stream(&uniform_stream(&space, 20, 1))? {
//!     assert!(record.served_accuracy >= record.query.accuracy_constraint);
//! }
//! # Ok::<(), sushi::core::SushiError>(())
//! ```
//!
//! Regenerate every paper table/figure:
//! `cargo run -p sushi-core --release --bin repro -- all`.

#![warn(missing_docs)]

pub use sushi_accel as accel;
pub use sushi_core as core;
pub use sushi_sched as sched;
pub use sushi_tensor as tensor;
pub use sushi_wsnet as wsnet;
