//! The [`Strategy`] trait and the combinators the SUSHI tests use.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for sampling values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic-RNG sampler.
pub trait Strategy {
    /// The type of sampled values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f` (mirror of `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value (`proptest::prelude::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.sample(rng))
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Union over `options`; panics if empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union").field("options", &self.options.len()).finish()
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (i128::from(self.end) - i128::from(self.start)) as u64;
                (i128::from(self.start) + i128::from(rng.below(span))) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span_minus_1 = (i128::from(*self.end()) - i128::from(*self.start())) as u64;
                // span_minus_1 == u64::MAX means the range covers every
                // value of a 64-bit type; adding 1 would overflow, and any
                // draw is in range anyway.
                let draw = if span_minus_1 == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.below(span_minus_1 + 1)
                };
                (i128::from(*self.start()) + i128::from(draw)) as $ty
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64);

// usize/isize lack the i128 From impls used above; delegate through u64/i64.
impl Strategy for Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        ((self.start as u64)..(self.end as u64)).sample(rng) as usize
    }
}

impl Strategy for RangeInclusive<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        ((*self.start() as u64)..=(*self.end() as u64)).sample(rng) as usize
    }
}

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let raw = self.start + (rng.unit_f64() as $ty) * (self.end - self.start);
                // FP rounding can land exactly on the excluded endpoint;
                // clamp back to preserve the half-open contract.
                if raw < self.end {
                    raw
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                *self.start() + (rng.unit_f64() as $ty) * (*self.end() - *self.start())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
