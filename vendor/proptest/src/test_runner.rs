//! Test configuration, RNG, and per-case outcome types.

/// Mirror of `proptest::test_runner::Config` (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful (non-rejected) cases each test must run.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` successful cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Outcome of a single sampled case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// `prop_assume!` rejected the inputs; sample again.
    Reject,
}

impl TestCaseError {
    /// Failure with the given message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Deterministic splitmix64 generator seeded from the test name, so every
/// run of a given test samples the identical input sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from an arbitrary integer.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// RNG seeded from a test name via FNV-1a.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::new(h)
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        // Modulo bias is irrelevant at test-sampling fidelity.
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
