//! Offline mini-proptest.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of [proptest](https://docs.rs/proptest) that the SUSHI
//! property tests use, with two deliberate simplifications:
//!
//! * **Deterministic sampling** — each test derives its RNG seed from the
//!   test name, so runs are reproducible and CI is stable.
//! * **No shrinking** — a failing case reports the failing assertion (and
//!   whatever the test's own message interpolates) but the sampled inputs
//!   are not echoed back or minimized; rely on the deterministic seeding
//!   to re-run the identical sequence under a debugger.
//!
//! Supported surface: `proptest!` (with `#![proptest_config(..)]`),
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!`, `prop_oneof!`,
//! [`strategy::Strategy`] with `prop_map`, [`strategy::Just`], numeric
//! range strategies, tuple strategies (arity ≤ 12), and
//! [`collection::vec`]. Delete `vendor/` and re-point the manifests at
//! crates.io to use real proptest.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn` runs `Config::cases` times with
/// inputs sampled from the strategies on the right of each `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut __passed: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(16).max(256);
                while __passed < __config.cases && __attempts < __max_attempts {
                    __attempts += 1;
                    $(let $parm = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            let _unit: () = $body;
                            ::core::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => __passed += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest '{}' failed at case {}: {}", stringify!($name), __passed, msg)
                        }
                    }
                }
                // Mirror real proptest's global-reject abort: a test whose
                // assumptions discard (almost) every sample must not pass
                // vacuously.
                assert!(
                    __passed >= __config.cases,
                    "proptest '{}': too many prop_assume! rejects ({} of {} attempts); only {} of {} cases ran",
                    stringify!($name),
                    __attempts - __passed,
                    __attempts,
                    __passed,
                    __config.cases,
                );
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args..)`: fails the
/// current case (without aborting the whole process) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)`: fails the current case when the two
/// sides differ, printing both.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

/// `prop_assume!(cond)`: discards the current case (it counts toward the
/// attempt cap but not toward `Config::cases`) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// `prop_oneof![s1, s2, ..]`: a strategy choosing uniformly among the
/// listed strategies (all must produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $(__options.push(::std::boxed::Box::new($strat));)+
        $crate::strategy::Union::new(__options)
    }};
}
