//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec`]: a fixed size or a range of sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self { min: *r.start(), max: *r.end() }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Output of [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
