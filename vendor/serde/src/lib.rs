//! Offline API-shim for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! just enough of serde's surface for the SUSHI workspace to compile:
//! the `Serialize`/`Deserialize` marker traits and the no-op derives from
//! the sibling [`serde_derive`] stub. No actual (de)serialization is
//! implemented — nothing in the repository performs it yet. Delete
//! `vendor/` and re-point the manifests at crates.io to use real serde.

/// Marker stand-in for `serde::Serialize`.
///
/// The real trait's methods are intentionally absent: the no-op derive
/// emits no impl, and no code in this workspace calls serialization.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
///
/// Lifetime parameter kept so `#[derive(Deserialize)]`-annotated generic
/// bounds written against real serde stay source-compatible.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
