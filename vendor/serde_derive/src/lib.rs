//! Offline no-op stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the smallest possible replacement: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` expand to nothing. The derives exist so that
//! annotated types keep compiling; nothing in the repository serializes
//! through serde yet. Swap in the real `serde`/`serde_derive` by deleting
//! `vendor/` and pointing the workspace manifests at crates.io.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: accepts the input, emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: accepts the input, emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
