//! Offline mini-criterion.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of [criterion](https://docs.rs/criterion) the SUSHI benches
//! use: `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_function`/`bench_with_input`/`sample_size`,
//! `BenchmarkId`, and `black_box`. Each benchmark is timed with
//! `std::time::Instant` over a fixed warm-up plus `sample_size` timed
//! iterations, reporting mean wall-clock time per iteration — no outlier
//! analysis, plots, or saved baselines. Delete `vendor/` and re-point the
//! manifests at crates.io to use real criterion.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Times `f` under `id` and prints the mean per-iteration wall time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, sample_size }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().0, self.sample_size, &mut f);
        self
    }

    /// Times `f` with an explicit input value, criterion-style.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.0, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (printing only; statistics are not aggregated).
    pub fn finish(self) {}
}

/// A function-plus-parameter benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Label rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the hot loop.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: f64,
    samples: usize,
}

impl Bencher {
    /// Runs `f` for warm-up, then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3.min(self.samples) {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        let total = start.elapsed();
        self.nanos_per_iter = total.as_nanos() as f64 / self.samples as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher { nanos_per_iter: 0.0, samples: samples.max(1) };
    f(&mut b);
    let ns = b.nanos_per_iter;
    if ns >= 1_000_000.0 {
        println!("bench {id:<48} {:>12.3} ms/iter", ns / 1_000_000.0);
    } else if ns >= 1_000.0 {
        println!("bench {id:<48} {:>12.3} us/iter", ns / 1_000.0);
    } else {
        println!("bench {id:<48} {ns:>12.1} ns/iter");
    }
}

/// Collects benchmark functions into a runnable group function
/// (mirror of `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups
/// (mirror of `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
